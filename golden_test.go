package dynspread_test

// Golden-seed parity suite: the rows below were produced by the seed engine
// (the pre-refactor split RunUnicast/RunBroadcast loops, after the
// map-iteration determinism fixes in graph.DSU and adversary.RequestCutter)
// for every supported Algorithm×Adversary pair at two fixed seeds. The
// unified round engine must reproduce every row bit-for-bit, which is what
// makes the engine refactor provably behavior-preserving.
//
// Regenerate (only when a deliberate semantic change lands) by running each
// config below through dynspread.Run and rewriting the table.

import (
	"fmt"
	"testing"

	"dynspread"
)

type goldenRow struct {
	alg     string
	adv     string
	sources int
	seed    int64

	completed  bool
	rounds     int
	messages   int64
	broadcasts int64
	learnings  int64
	tc         int64
	removals   int64
}

// goldenN and goldenK are the instance size every golden row runs at.
const (
	goldenN         = 10
	goldenK         = 10
	goldenMaxRounds = 20000
)

var goldenRows = []goldenRow{
	{"single-source", "static", 1, 1, true, 23, 218, 0, 90, 20, 0},
	{"single-source", "static", 1, 7, true, 22, 218, 0, 90, 20, 0},
	{"single-source", "churn", 1, 1, true, 22, 231, 0, 90, 38, 18},
	{"single-source", "churn", 1, 7, true, 23, 229, 0, 90, 40, 20},
	{"single-source", "rewire", 1, 1, true, 42, 337, 0, 90, 470, 450},
	{"single-source", "rewire", 1, 7, true, 43, 365, 0, 90, 490, 470},
	{"single-source", "markovian", 1, 1, true, 38, 254, 0, 90, 96, 85},
	{"single-source", "markovian", 1, 7, true, 44, 265, 0, 90, 118, 109},
	{"single-source", "regular", 1, 1, true, 36, 331, 0, 90, 417, 393},
	{"single-source", "regular", 1, 7, true, 39, 341, 0, 90, 443, 420},
	{"single-source", "rotating-star", 1, 1, true, 84, 277, 0, 90, 337, 328},
	{"single-source", "rotating-star", 1, 7, true, 84, 277, 0, 90, 337, 328},
	{"single-source", "mobility", 1, 1, true, 45, 233, 0, 90, 39, 22},
	{"single-source", "mobility", 1, 7, true, 49, 239, 0, 90, 42, 25},
	{"single-source", "request-cutter", 1, 1, true, 64, 351, 0, 90, 183, 153},
	{"single-source", "request-cutter", 1, 7, true, 50, 298, 0, 90, 141, 112},
	{"multi-source", "static", 3, 1, true, 19, 257, 0, 90, 20, 0},
	{"multi-source", "static", 3, 7, true, 17, 251, 0, 90, 20, 0},
	{"multi-source", "churn", 3, 1, true, 20, 299, 0, 90, 36, 16},
	{"multi-source", "churn", 3, 7, true, 20, 297, 0, 90, 37, 17},
	{"multi-source", "rewire", 3, 1, true, 42, 512, 0, 90, 470, 450},
	{"multi-source", "rewire", 3, 7, true, 42, 501, 0, 90, 480, 460},
	{"multi-source", "markovian", 3, 1, true, 35, 343, 0, 90, 91, 77},
	{"multi-source", "markovian", 3, 7, true, 32, 342, 0, 90, 90, 79},
	{"multi-source", "regular", 3, 1, true, 28, 446, 0, 90, 322, 298},
	{"multi-source", "regular", 3, 7, true, 44, 518, 0, 90, 500, 476},
	{"multi-source", "rotating-star", 3, 1, true, 66, 370, 0, 90, 265, 256},
	{"multi-source", "rotating-star", 3, 7, true, 66, 370, 0, 90, 265, 256},
	{"multi-source", "mobility", 3, 1, true, 41, 324, 0, 90, 36, 21},
	{"multi-source", "mobility", 3, 7, true, 28, 279, 0, 90, 31, 13},
	{"multi-source", "request-cutter", 3, 1, true, 49, 496, 0, 90, 167, 144},
	{"multi-source", "request-cutter", 3, 7, true, 62, 496, 0, 90, 182, 158},
	{"oblivious", "static", 10, 1, true, 21, 469, 0, 90, 20, 0},
	{"oblivious", "static", 10, 7, true, 21, 482, 0, 90, 20, 0},
	{"oblivious", "churn", 10, 1, true, 25, 635, 0, 90, 41, 21},
	{"oblivious", "churn", 10, 7, true, 27, 633, 0, 90, 44, 24},
	{"oblivious", "rewire", 10, 1, true, 44, 1007, 0, 90, 491, 471},
	{"oblivious", "rewire", 10, 7, true, 42, 993, 0, 90, 480, 460},
	{"oblivious", "markovian", 10, 1, true, 51, 801, 0, 90, 128, 117},
	{"oblivious", "markovian", 10, 7, true, 52, 768, 0, 90, 136, 126},
	{"oblivious", "regular", 10, 1, true, 42, 1038, 0, 90, 477, 452},
	{"oblivious", "regular", 10, 7, true, 44, 1041, 0, 90, 500, 476},
	{"oblivious", "rotating-star", 10, 1, true, 40, 537, 0, 90, 161, 152},
	{"oblivious", "rotating-star", 10, 7, true, 40, 537, 0, 90, 161, 152},
	{"oblivious", "mobility", 10, 1, true, 46, 650, 0, 90, 39, 24},
	{"oblivious", "mobility", 10, 7, true, 43, 634, 0, 90, 39, 17},
	{"oblivious", "request-cutter", 10, 1, true, 59, 1020, 0, 90, 176, 154},
	{"oblivious", "request-cutter", 10, 7, true, 54, 944, 0, 90, 159, 138},
	{"spanning-tree", "static", 1, 1, true, 13, 130, 0, 90, 20, 0},
	{"spanning-tree", "static", 1, 7, true, 13, 130, 0, 90, 20, 0},
	{"spanning-tree", "churn", 1, 1, true, 66, 130, 0, 90, 81, 61},
	{"spanning-tree", "churn", 1, 7, true, 74, 130, 0, 90, 88, 68},
	{"spanning-tree", "rewire", 1, 1, true, 46, 135, 0, 90, 512, 492},
	{"spanning-tree", "rewire", 1, 7, true, 33, 136, 0, 90, 383, 363},
	{"spanning-tree", "markovian", 1, 1, true, 105, 117, 0, 90, 246, 233},
	{"spanning-tree", "markovian", 1, 7, true, 205, 117, 0, 90, 486, 475},
	{"spanning-tree", "regular", 1, 1, true, 33, 146, 0, 90, 382, 359},
	{"spanning-tree", "regular", 1, 7, true, 33, 144, 0, 90, 380, 355},
	{"spanning-tree", "rotating-star", 1, 1, true, 60, 108, 0, 90, 241, 232},
	{"spanning-tree", "rotating-star", 1, 7, true, 60, 108, 0, 90, 241, 232},
	{"spanning-tree", "mobility", 1, 1, true, 241, 118, 0, 90, 140, 122},
	{"spanning-tree", "mobility", 1, 7, true, 132, 121, 0, 90, 82, 61},
	{"spanning-tree", "request-cutter", 1, 1, true, 106, 131, 0, 90, 122, 102},
	{"spanning-tree", "request-cutter", 1, 7, true, 85, 130, 0, 90, 103, 83},
	{"topkis", "static", 1, 1, true, 11, 383, 0, 90, 20, 0},
	{"topkis", "static", 1, 7, true, 11, 382, 0, 90, 20, 0},
	{"topkis", "churn", 1, 1, true, 11, 386, 0, 90, 28, 8},
	{"topkis", "churn", 1, 7, true, 14, 433, 0, 90, 31, 11},
	{"topkis", "rewire", 1, 1, true, 23, 755, 0, 90, 259, 239},
	{"topkis", "rewire", 1, 7, true, 20, 688, 0, 90, 233, 213},
	{"topkis", "markovian", 1, 1, true, 29, 498, 0, 90, 79, 66},
	{"topkis", "markovian", 1, 7, true, 32, 539, 0, 90, 90, 79},
	{"topkis", "regular", 1, 1, true, 18, 742, 0, 90, 212, 187},
	{"topkis", "regular", 1, 7, true, 21, 796, 0, 90, 243, 219},
	{"topkis", "rotating-star", 1, 1, true, 42, 711, 0, 90, 169, 160},
	{"topkis", "rotating-star", 1, 7, true, 42, 711, 0, 90, 169, 160},
	{"topkis", "mobility", 1, 1, true, 19, 353, 0, 90, 23, 6},
	{"topkis", "mobility", 1, 7, true, 25, 389, 0, 90, 29, 12},
	{"topkis", "request-cutter", 1, 1, true, 13, 423, 0, 90, 32, 12},
	{"topkis", "request-cutter", 1, 7, true, 12, 401, 0, 90, 31, 11},
	{"flooding", "static", 10, 1, true, 92, 778, 778, 90, 20, 0},
	{"flooding", "static", 10, 7, true, 92, 774, 774, 90, 20, 0},
	{"flooding", "churn", 10, 1, true, 92, 783, 783, 90, 106, 86},
	{"flooding", "churn", 10, 7, true, 93, 772, 772, 90, 106, 86},
	{"flooding", "rewire", 10, 1, true, 93, 786, 786, 90, 1033, 1013},
	{"flooding", "rewire", 10, 7, true, 92, 779, 779, 90, 1015, 995},
	{"flooding", "markovian", 10, 1, true, 94, 716, 716, 90, 223, 211},
	{"flooding", "markovian", 10, 7, true, 95, 735, 735, 90, 233, 222},
	{"flooding", "regular", 10, 1, true, 92, 786, 786, 90, 1029, 1007},
	{"flooding", "regular", 10, 7, true, 92, 789, 789, 90, 1050, 1025},
	{"flooding", "rotating-star", 10, 1, true, 92, 766, 766, 90, 369, 360},
	{"flooding", "rotating-star", 10, 7, true, 92, 766, 766, 90, 369, 360},
	{"flooding", "mobility", 10, 1, true, 94, 750, 750, 90, 63, 44},
	{"flooding", "mobility", 10, 7, true, 95, 741, 741, 90, 59, 43},
	{"flooding", "free-edge", 10, 1, true, 99, 540, 540, 90, 313, 304},
	{"flooding", "free-edge", 10, 7, true, 99, 540, 540, 90, 285, 276},
	{"random-broadcast", "static", 10, 1, true, 24, 240, 240, 90, 20, 0},
	{"random-broadcast", "static", 10, 7, true, 34, 340, 340, 90, 20, 0},
	{"random-broadcast", "churn", 10, 1, true, 19, 190, 190, 90, 35, 15},
	{"random-broadcast", "churn", 10, 7, true, 19, 190, 190, 90, 36, 16},
	{"random-broadcast", "rewire", 10, 1, true, 14, 140, 140, 90, 161, 141},
	{"random-broadcast", "rewire", 10, 7, true, 15, 150, 150, 90, 181, 161},
	{"random-broadcast", "markovian", 10, 1, true, 27, 270, 270, 90, 76, 64},
	{"random-broadcast", "markovian", 10, 7, true, 24, 240, 240, 90, 70, 60},
	{"random-broadcast", "regular", 10, 1, true, 14, 140, 140, 90, 169, 141},
	{"random-broadcast", "regular", 10, 7, true, 11, 110, 110, 90, 137, 114},
	{"random-broadcast", "rotating-star", 10, 1, true, 35, 350, 350, 90, 145, 136},
	{"random-broadcast", "rotating-star", 10, 7, true, 52, 520, 520, 90, 209, 200},
	{"random-broadcast", "mobility", 10, 1, true, 38, 380, 380, 90, 33, 18},
	{"random-broadcast", "mobility", 10, 7, true, 34, 340, 340, 90, 32, 14},
	{"random-broadcast", "free-edge", 10, 1, false, 20000, 200000, 200000, 75, 60513, 60504},
	{"random-broadcast", "free-edge", 10, 7, false, 20000, 200000, 200000, 76, 53274, 53265},
}

func TestGoldenSeedParity(t *testing.T) {
	for _, row := range goldenRows {
		name := fmt.Sprintf("%s/%s/seed%d", row.alg, row.adv, row.seed)
		t.Run(name, func(t *testing.T) {
			if testing.Short() && !row.completed {
				t.Skip("skipping max-rounds golden in -short mode")
			}
			rep, err := dynspread.Run(dynspread.Config{
				N: goldenN, K: goldenK, Sources: row.sources,
				Algorithm: dynspread.Algorithm(row.alg),
				Adversary: dynspread.Adversary(row.adv),
				Seed:      row.seed,
				MaxRounds: goldenMaxRounds,
			})
			if err != nil {
				t.Fatal(err)
			}
			m := rep.Metrics
			got := goldenRow{row.alg, row.adv, row.sources, row.seed,
				rep.Completed, rep.Rounds, m.Messages, m.Broadcasts, m.Learnings, m.TC, m.Removals}
			if got != row {
				t.Errorf("engine diverged from seed engine:\n got  %+v\n want %+v", got, row)
			}
		})
	}
}
