// Package dynspread is a reproduction of "The Communication Cost of
// Information Spreading in Dynamic Networks" (Ahmadi, Kuhn, Kutten, Molla,
// Pandurangan — ICDCS 2019, arXiv:1806.09847): a simulation library for
// studying the amortized message complexity of k-token dissemination in
// adversarial dynamic networks with token-forwarding algorithms.
//
// The root package is a facade over the layers in internal/ (see
// ARCHITECTURE.md):
//
//   - internal/sim — a single synchronous round engine with two
//     communication modes (unicast and local broadcast), per-Definition-1.1
//     message accounting, per-Definition-1.3 topological-change accounting,
//     and an allocation-free steady-state round: messages carry their
//     payloads as inline values tagged by a PayloadKind bitmask (no
//     per-payload heap pointers), delivery order comes from a counting sort
//     over reusable buckets, and sim.Workspace recycles every per-round
//     buffer (knowledge bitsets resize in place across sweep shapes) — the
//     alloc-gate tests assert zero allocations per round under a static
//     adversary,
//   - internal/registry — the extension point where algorithms and
//     adversaries self-describe (name, mode, builder, doc) and are resolved
//     by name; adding one is a one-file change,
//   - internal/core and internal/adversary — the paper's algorithms
//     (flooding, Single-Source-Unicast = Algorithm 1, Multi-Source-Unicast,
//     Oblivious-Multi-Source-Unicast = Algorithm 2, static baselines) and
//     adversaries (oblivious sequences plus the strongly adaptive
//     request-cutter and Section 2 free-edge lower-bound adversary), all
//     self-registering,
//   - internal/scenario — the workload registry: named scenarios bundling
//     an instance shape, dynamics (an adversary, or a recorded graph trace
//     replayed verbatim), and a token arrival schedule (burst, uniform
//     rate, Poisson-like, or explicit — streaming the engine's token supply
//     over time instead of starting with everything at round 0),
//   - internal/trace — per-round series recording plus JSONL graph-event
//     traces (record any run's dynamics, replay them bit-exactly),
//   - internal/sweep — declarative trial grids (including a scenarios axis)
//     executed on a context-cancellable worker pool sized to GOMAXPROCS
//     with per-worker buffer reuse and a per-result progress hook,
//   - internal/wire — the wire schema (this package re-exports it:
//     TrialSpec, GridSpec, RunRequest, TrialResult) plus the content
//     address Key every cache and store keys on,
//   - internal/service — the simulation service behind cmd/spreadd: an HTTP
//     daemon scheduling trial/sweep jobs on a bounded queue over a
//     pluggable execution backend (the in-process sweep pool by default),
//     with a content-addressed LRU run cache so repeated requests cost
//     zero simulation work,
//   - internal/cluster — the distributed sweep tier: a coordinator that
//     plans deterministic, size-balanced shards, dispatches them across a
//     pool of spreadd workers with per-shard retry and re-dispatch around
//     dead workers, and merges streamed results bit-identical to a local
//     run (spreadd -peers serves it; spreadctl sweep embeds it;
//     RunDistributed is the library facade),
//   - internal/store — the append-only JSONL result log keyed by spec
//     content address that makes distributed sweeps resumable (interrupted
//     runs skip stored keys; warm re-runs simulate nothing), and
//   - internal/experiments — the harness that regenerates every table and
//     figure (see EXPERIMENTS.md), and
//   - internal/analysis — a stdlib-only static-analysis suite behind
//     cmd/spreadvet (`go vet -vettool`) that mechanizes the repository's
//     conventions: hot-path allocation discipline, registry hygiene, span
//     lifecycle, wire-schema tags, and metric naming.
//
// # The hot-path contract
//
// Functions annotated //dynspread:hotpath in their doc comment run inside
// the per-round simulation loop and promise not to allocate in the steady
// state. The hotpath analyzer enforces the contract statically — no map
// literals/writes/makes, no append growth, no fmt/reflect calls, no
// capturing closures, no interface boxing — while the alloc-gate tests
// (alloc_gate_test.go) enforce it dynamically. Constructs inside return
// statements are exempt (failing out of the hot loop may allocate), and a
// deliberate amortized allocation (a buffer that regrows a bounded number
// of times and is then reused forever) is suppressed in code with
//
//	//dynspread:allow hotpath -- <why the allocation is amortized>
//
// on or above the flagged line; the justification is mandatory.
//
// Quick start:
//
//	report, err := dynspread.Run(dynspread.Config{
//		N: 32, K: 64, Sources: 1,
//		Algorithm: dynspread.AlgSingleSource,
//		Adversary: dynspread.AdvChurn,
//		Seed:      1,
//	})
//	if err != nil { ... }
//	fmt.Println(report.Metrics.Messages, report.Metrics.TC, report.Rounds)
//
// Or select a registered workload wholesale — the scenario supplies the
// shape, dynamics, and arrival schedule:
//
//	report, err := dynspread.Run(dynspread.Config{
//		Scenario: dynspread.ScenTokenStream, // tokens arrive 2/round mid-run
//		Seed:     1,
//	})
//
// Scenario, Algorithm, and Adversary values are registry names, so
// components registered by other packages are selectable here too. Record
// any run's dynamics with RunRecorded and replay the returned GraphTrace
// through Config.Replay for bit-exact reproduction. For thousands of
// trials, use internal/sweep's grids instead of calling Run in a loop; to
// serve simulations over HTTP with result caching, run cmd/spreadd (see
// the README's curl quickstart). RunFull and RunSpecs produce the service's
// machine-readable TrialResult schema in-process; RunDistributed executes
// the same requests across a pool of spreadd workers (see the README's
// cluster quickstart and cmd/spreadctl).
//
// See the examples/ directory for runnable scenarios and cmd/ for the CLI
// tools (spreadsim -list prints every registered component).
package dynspread
