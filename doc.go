// Package dynspread is a reproduction of "The Communication Cost of
// Information Spreading in Dynamic Networks" (Ahmadi, Kuhn, Kutten, Molla,
// Pandurangan — ICDCS 2019, arXiv:1806.09847): a simulation library for
// studying the amortized message complexity of k-token dissemination in
// adversarial dynamic networks with token-forwarding algorithms.
//
// The root package is a facade over the building blocks in internal/:
//
//   - a synchronous dynamic-graph engine with per-Definition-1.1 message
//     accounting and per-Definition-1.3 topological-change accounting,
//   - the paper's algorithms (flooding, Single-Source-Unicast = Algorithm 1,
//     Multi-Source-Unicast, Oblivious-Multi-Source-Unicast = Algorithm 2,
//     plus static baselines),
//   - oblivious and strongly adaptive adversaries (including the Section 2
//     free-edge lower-bound adversary), and
//   - the experiment harness that regenerates every table and figure
//     (see EXPERIMENTS.md).
//
// Quick start:
//
//	report, err := dynspread.Run(dynspread.Config{
//		N: 32, K: 64, Sources: 1,
//		Algorithm: dynspread.AlgSingleSource,
//		Adversary: dynspread.AdvChurn,
//		Seed:      1,
//	})
//	if err != nil { ... }
//	fmt.Println(report.Metrics.Messages, report.Metrics.TC, report.Rounds)
//
// See the examples/ directory for runnable scenarios and cmd/ for the CLI
// tools.
package dynspread
