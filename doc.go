// Package dynspread is a reproduction of "The Communication Cost of
// Information Spreading in Dynamic Networks" (Ahmadi, Kuhn, Kutten, Molla,
// Pandurangan — ICDCS 2019, arXiv:1806.09847): a simulation library for
// studying the amortized message complexity of k-token dissemination in
// adversarial dynamic networks with token-forwarding algorithms.
//
// The root package is a facade over the layers in internal/ (see
// ARCHITECTURE.md):
//
//   - internal/sim — a single synchronous round engine with two
//     communication modes (unicast and local broadcast), per-Definition-1.1
//     message accounting, per-Definition-1.3 topological-change accounting,
//     and reusable execution buffers (sim.Workspace),
//   - internal/registry — the extension point where algorithms and
//     adversaries self-describe (name, mode, builder, doc) and are resolved
//     by name; adding one is a one-file change,
//   - internal/core and internal/adversary — the paper's algorithms
//     (flooding, Single-Source-Unicast = Algorithm 1, Multi-Source-Unicast,
//     Oblivious-Multi-Source-Unicast = Algorithm 2, static baselines) and
//     adversaries (oblivious sequences plus the strongly adaptive
//     request-cutter and Section 2 free-edge lower-bound adversary), all
//     self-registering,
//   - internal/sweep — declarative trial grids executed on a worker pool
//     sized to GOMAXPROCS with per-worker buffer reuse, and
//   - internal/experiments — the harness that regenerates every table and
//     figure (see EXPERIMENTS.md).
//
// Quick start:
//
//	report, err := dynspread.Run(dynspread.Config{
//		N: 32, K: 64, Sources: 1,
//		Algorithm: dynspread.AlgSingleSource,
//		Adversary: dynspread.AdvChurn,
//		Seed:      1,
//	})
//	if err != nil { ... }
//	fmt.Println(report.Metrics.Messages, report.Metrics.TC, report.Rounds)
//
// Algorithm and Adversary values are registry names, so algorithms
// registered by other packages are selectable here too. For thousands of
// trials, use internal/sweep's grids instead of calling Run in a loop.
//
// See the examples/ directory for runnable scenarios and cmd/ for the CLI
// tools (spreadsim -list prints every registered component).
package dynspread
