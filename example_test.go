package dynspread_test

import (
	"fmt"

	"dynspread"
)

// Example runs Algorithm 1 on a small static network and prints the exact
// token-delivery count (each of the 4 tokens reaches each of the 7
// non-source nodes exactly once).
func Example() {
	report, err := dynspread.Run(dynspread.Config{
		N: 8, K: 4, Sources: 1,
		Algorithm: dynspread.AlgSingleSource,
		Adversary: dynspread.AdvStatic,
		Seed:      1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("completed:", report.Completed)
	fmt.Println("token deliveries:", report.Metrics.TokenPayloads)
	// Output:
	// completed: true
	// token deliveries: 28
}

// ExampleRun_competitive shows the adversary-competitive accounting of
// Definition 1.3 against a strongly adaptive adversary: the residual
// Messages − TC(E) stays bounded by O(n²+nk) no matter how many requests the
// adversary wastes.
func ExampleRun_competitive() {
	report, err := dynspread.Run(dynspread.Config{
		N: 16, K: 32, Sources: 1,
		Algorithm: dynspread.AlgSingleSource,
		Adversary: dynspread.AdvRequestCutter,
		Seed:      1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	bound := float64(16*16 + 16*32)
	fmt.Println("completed:", report.Completed)
	fmt.Println("residual within 8x bound:", report.CompetitiveResidual <= 8*bound)
	// Output:
	// completed: true
	// residual within 8x bound: true
}
