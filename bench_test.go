package dynspread_test

// One benchmark per paper artifact (table/figure/theorem bound), backed by
// the same experiment harness that regenerates EXPERIMENTS.md, plus
// micro-benchmarks of the individual algorithms. Each experiment bench
// reports rows/op so regressions in coverage are visible alongside time.
//
// Run everything:  go test -bench=. -benchmem
// One experiment:  go test -bench=BenchmarkE6 -benchmem

import (
	"context"
	"testing"
	"time"

	"dynspread"
	"dynspread/internal/experiments"
	"dynspread/internal/sim"
	"dynspread/internal/sweep"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var runner experiments.Runner
	for _, r := range experiments.All() {
		if r.ID == id {
			runner = r
			break
		}
	}
	if runner.Run == nil {
		b.Fatalf("experiment %s not found", id)
	}
	cfg := experiments.Config{Quick: true, Seed: 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb, err := runner.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(tb.Rows)), "rows/op")
	}
}

// BenchmarkE1LowerBoundLocalBroadcast regenerates Theorem 2.3's table:
// amortized local broadcasts of flooding vs the free-edge adversary.
func BenchmarkE1LowerBoundLocalBroadcast(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2FreeGraphStructure regenerates Figure 1 / Lemmas 2.1-2.2:
// free-graph component structure and sparse-round stalls.
func BenchmarkE2FreeGraphStructure(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3SingleSourceMessages regenerates Theorem 3.1's table:
// 1-adversary-competitive message complexity of Algorithm 1.
func BenchmarkE3SingleSourceMessages(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4SingleSourceRounds regenerates Theorem 3.4's table: O(nk)
// rounds on 3-edge-stable churn.
func BenchmarkE4SingleSourceRounds(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5MultiSource regenerates Theorems 3.5/3.6: the multi-source
// s-sweep.
func BenchmarkE5MultiSource(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Table1Oblivious regenerates Table 1 / Theorem 3.8: Algorithm
// 2's amortized messages vs k.
func BenchmarkE6Table1Oblivious(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7RandomWalkVisits regenerates Lemma 3.7's visit-bound table.
func BenchmarkE7RandomWalkVisits(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8StaticBaseline regenerates the introduction's static
// spanning-tree baseline table.
func BenchmarkE8StaticBaseline(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9PriorityAblation regenerates the request-priority ablation.
func BenchmarkE9PriorityAblation(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10CenterSweep regenerates the center-density ablation.
func BenchmarkE10CenterSweep(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11FutileRounds regenerates the Lemma 3.3 futile-round table.
func BenchmarkE11FutileRounds(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12Adaptivity regenerates the strong-vs-weak adversary table.
func BenchmarkE12Adaptivity(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13WalkCongestion regenerates the phase-1 congestion table.
func BenchmarkE13WalkCongestion(b *testing.B) { benchExperiment(b, "E13") }

// --- micro-benchmarks of single runs (time/op of one full dissemination) ---

func benchRun(b *testing.B, cfg dynspread.Config) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		rep, err := dynspread.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Completed {
			b.Fatal("incomplete")
		}
		b.ReportMetric(rep.Amortized, "msgs/token")
		b.ReportMetric(float64(rep.Rounds), "rounds/op")
	}
}

func BenchmarkRunSingleSourceChurn(b *testing.B) {
	benchRun(b, dynspread.Config{N: 32, K: 32, Algorithm: dynspread.AlgSingleSource, Adversary: dynspread.AdvChurn})
}

func BenchmarkRunSingleSourceRequestCutter(b *testing.B) {
	benchRun(b, dynspread.Config{N: 32, K: 32, Algorithm: dynspread.AlgSingleSource, Adversary: dynspread.AdvRequestCutter})
}

func BenchmarkRunMultiSourceChurn(b *testing.B) {
	benchRun(b, dynspread.Config{N: 32, K: 32, Sources: 8, Algorithm: dynspread.AlgMultiSource, Adversary: dynspread.AdvChurn})
}

func BenchmarkRunObliviousRegular(b *testing.B) {
	benchRun(b, dynspread.Config{N: 32, K: 32, Sources: 32, Algorithm: dynspread.AlgOblivious, Adversary: dynspread.AdvRegular})
}

func BenchmarkRunFloodingFreeEdge(b *testing.B) {
	benchRun(b, dynspread.Config{N: 24, K: 24, Sources: 24, Algorithm: dynspread.AlgFlooding, Adversary: dynspread.AdvFreeEdge})
}

func BenchmarkRunSpanningTreeStatic(b *testing.B) {
	benchRun(b, dynspread.Config{N: 32, K: 64, Algorithm: dynspread.AlgSpanningTree, Adversary: dynspread.AdvStatic})
}

// --- steady-round benchmarks: cost of ONE hot-path round ---
//
// These cap a non-completing deterministic trial at a fixed round count and
// report ns/round alongside the standard ns/op and allocs/op, so the perf
// trajectory tracks the engine's per-round cost directly. With a warm
// workspace the allocs/op of both must stay at the constant per-run setup
// cost — the alloc_gate tests enforce the stronger zero-per-round property.

func benchSteadyRounds(b *testing.B, cfg dynspread.Config, rounds int) {
	b.Helper()
	cfg.Workspace = sim.NewWorkspace()
	run := func(maxRounds int) time.Duration {
		c := cfg
		c.MaxRounds = maxRounds
		start := time.Now()
		rep, err := dynspread.Run(c)
		elapsed := time.Since(start)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed {
			b.Fatal("trial completed; steady-round benchmark needs a capped run")
		}
		return elapsed
	}
	run(rounds) // warm the workspace
	// ns/round is measured differentially — full-length run minus
	// half-length run — so per-run setup (adversary construction, protocol
	// instances) cancels out and the metric tracks only the hot path, the
	// same technique the alloc_gate tests use for allocations. Min-of-3 per
	// length filters scheduler noise, which otherwise dominates a
	// single-iteration (-benchtime 1x) difference of two short runs.
	best := func(maxRounds int) time.Duration {
		bestD := run(maxRounds)
		for r := 0; r < 2; r++ {
			if d := run(maxRounds); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	half := rounds / 2
	var tFull, tHalf time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tFull += best(rounds)
		tHalf += best(half)
	}
	b.StopTimer()
	perRound := float64((tFull - tHalf).Nanoseconds()) / float64(b.N*(rounds-half))
	b.ReportMetric(max(perRound, 0), "ns/round")
}

// BenchmarkSteadyRoundUnicast measures the unicast hot path (value-typed
// messages, counting-sort delivery) via Topkis under the static adversary:
// ~256 messages per round on a 64-node graph.
func BenchmarkSteadyRoundUnicast(b *testing.B) {
	benchSteadyRounds(b, dynspread.Config{
		N: 64, K: 2048, Algorithm: dynspread.AlgTopkis, Adversary: dynspread.AdvStatic, Seed: 7,
	}, 400)
}

// BenchmarkSteadyRoundUnicastRecorded is the same workload with the flight
// recorder attached at the documented operational stride — compare against
// BenchmarkSteadyRoundUnicast to see the recorder's per-round cost (the
// TestRecorderOverheadGate bound is 1.10×; measured ~1.0×).
func BenchmarkSteadyRoundUnicastRecorded(b *testing.B) {
	benchSteadyRounds(b, dynspread.Config{
		N: 64, K: 2048, Algorithm: dynspread.AlgTopkis, Adversary: dynspread.AdvStatic, Seed: 7,
		Recorder: sim.NewRecorder(sim.RecorderConfig{Stride: 64}),
	}, 400)
}

// BenchmarkSteadyRoundBroadcast measures the local-broadcast hot path via
// flooding under the static adversary.
func BenchmarkSteadyRoundBroadcast(b *testing.B) {
	benchSteadyRounds(b, dynspread.Config{
		N: 64, K: 256, Sources: 64, Algorithm: dynspread.AlgFlooding, Adversary: dynspread.AdvStatic, Seed: 7,
	}, 400)
}

// --- sweep benchmarks: 64-trial grid, serial vs parallel vs no buffer reuse ---
//
// Compare with -benchmem:
//
//	go test -bench=BenchmarkSweep64 -benchmem
//
// Sweep64Parallel over Sweep64Serial shows the worker-pool speedup on
// multi-core (GOMAXPROCS workers vs 1); Sweep64Serial over
// Sweep64NoWorkspace shows the allocs/op cut from per-worker reuse of the
// engine's bitset/message/inbox buffers across sequential trials.

func sweepTrials64() []sweep.Trial {
	seeds := make([]int64, 16)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return sweep.Grid{
		Ns:          []int{24},
		Ks:          []int{24},
		Algorithms:  []string{"single-source", "topkis"},
		Adversaries: []string{"static", "churn"},
		Seeds:       seeds,
	}.Trials() // 2 algorithms × 2 adversaries × 16 seeds = 64 trials
}

func benchSweep(b *testing.B, parallelism int) {
	b.Helper()
	trials := sweepTrials64()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := sweep.Run(context.Background(), trials, sweep.Options{Parallelism: parallelism})
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(trials) {
			b.Fatalf("got %d results", len(results))
		}
		b.ReportMetric(float64(len(results)), "trials/op")
	}
}

// BenchmarkSweep64Serial runs the grid on one worker (with buffer reuse).
func BenchmarkSweep64Serial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweep64Parallel runs the grid on GOMAXPROCS workers.
func BenchmarkSweep64Parallel(b *testing.B) { benchSweep(b, 0) }

// BenchmarkSweep64NoWorkspace runs the same 64 trials as cold per-trial
// engine calls (no workspace reuse) — the pre-sweep baseline.
func BenchmarkSweep64NoWorkspace(b *testing.B) {
	trials := sweepTrials64()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range trials {
			if _, err := sweep.RunTrial(tr, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(trials)), "trials/op")
	}
}
