package dynspread_test

// Golden rows for the scenario subsystem, locking it against regression the
// same way golden_test.go locks the engine: pinned metrics for runs with a
// streaming arrival schedule (uniform and Poisson-like), for an
// example-derived scenario, and a record→replay pair that must reproduce a
// live adversary's run bit for bit.

import (
	"bytes"
	"fmt"
	"testing"

	"dynspread"
)

type goldenScenarioRow struct {
	scenario string
	seed     int64

	completed  bool
	rounds     int
	messages   int64
	broadcasts int64
	learnings  int64
	tc         int64
	removals   int64
}

var goldenScenarioRows = []goldenScenarioRow{
	// Arrival schedules: token-stream is a uniform 2-tokens/round feed into
	// one source under churn (unicast); bursty-gossip is a Poisson-like
	// feed into 4 sources over edge-Markovian links (broadcast).
	{"token-stream", 1, true, 158, 12804, 0, 1104, 501, 453},
	{"token-stream", 7, true, 161, 13142, 0, 1104, 514, 466},
	{"bursty-gossip", 1, true, 500, 6932, 6932, 480, 2571, 2545},
	{"bursty-gossip", 7, true, 499, 6781, 6781, 480, 2507, 2480},
	// Example-derived: the sensornet example's free-edge run at its seed.
	{"sensornet", 11, true, 1023, 16864, 16864, 992, 10408, 10377},
}

func TestGoldenScenarioRows(t *testing.T) {
	for _, row := range goldenScenarioRows {
		name := fmt.Sprintf("%s/seed%d", row.scenario, row.seed)
		t.Run(name, func(t *testing.T) {
			rep, err := dynspread.Run(dynspread.Config{
				Scenario: dynspread.Scenario(row.scenario),
				Seed:     row.seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			m := rep.Metrics
			got := goldenScenarioRow{row.scenario, row.seed,
				rep.Completed, rep.Rounds, m.Messages, m.Broadcasts, m.Learnings, m.TC, m.Removals}
			if got != row {
				t.Errorf("scenario run diverged from golden row:\n got  %+v\n want %+v", got, row)
			}
		})
	}
}

// TestGoldenTraceReplay records the dynamics of a golden-pinned engine run
// (single-source × churn at n=k=10, seed 1 — the third row of
// golden_test.go) and replays it: the replayed run must reproduce the
// recorded run's metrics exactly, and both must match the pinned values.
// The trace also survives a JSONL serialization round trip unchanged.
func TestGoldenTraceReplay(t *testing.T) {
	cfg := dynspread.Config{
		N: 10, K: 10, Sources: 1,
		Algorithm: dynspread.AlgSingleSource,
		Adversary: dynspread.AdvChurn,
		Seed:      1,
		MaxRounds: 20000,
	}
	rec, tr, err := dynspread.RunRecorded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The golden_test.go row for single-source/churn/seed1.
	want := goldenScenarioRow{"", 1, true, 22, 231, 0, 90, 38, 18}
	m := rec.Metrics
	got := goldenScenarioRow{"", 1, rec.Completed, rec.Rounds, m.Messages, m.Broadcasts, m.Learnings, m.TC, m.Removals}
	if got != want {
		t.Fatalf("recorded run diverged from the engine golden row:\n got  %+v\n want %+v", got, want)
	}
	if tr.NumRounds() != rec.Rounds {
		t.Fatalf("trace has %d rounds, run had %d", tr.NumRounds(), rec.Rounds)
	}

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := dynspread.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	replayCfg := cfg
	replayCfg.Adversary = ""
	replayCfg.Replay = tr2
	rep, err := dynspread.Run(replayCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AdversaryName != "trace-replay" {
		t.Fatalf("adversary name %q", rep.AdversaryName)
	}
	if rep.Metrics != rec.Metrics || rep.Rounds != rec.Rounds || rep.Completed != rec.Completed {
		t.Fatalf("replay diverged from recording:\n rec    %+v\n replay %+v", rec, rep)
	}
}
