package dynspread_test

// The allocation gate of the round hot path: once buffers are warm, a
// steady-state round must allocate NOTHING — in unicast mode (value-typed
// messages, counting-sort delivery, workspace buffers) and in broadcast
// mode (choice/heard buffers). The gate measures per-round allocations
// differentially: two executions of the same deterministic trial that
// differ only in MaxRounds allocate identically during setup and during
// their shared prefix, so any difference is exactly the allocation cost of
// the extra steady-state rounds.

import (
	"math/bits"
	"testing"
	"time"

	"dynspread"
	"dynspread/internal/bitset"
	"dynspread/internal/bitset/adaptive"
	"dynspread/internal/sim"
)

// perRoundAllocs returns the average allocations per steady-state round of
// cfg between rounds r1 and r2 (both below the trial's completion round).
func perRoundAllocs(t *testing.T, cfg dynspread.Config, r1, r2 int) float64 {
	t.Helper()
	cfg.Workspace = sim.NewWorkspace()
	run := func(rounds int) {
		c := cfg
		c.MaxRounds = rounds
		rep, err := dynspread.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Completed {
			t.Fatalf("trial completed within %d rounds; the gate needs steady-state rounds", rounds)
		}
	}
	run(r2) // warm the workspace to the largest shape
	a1 := testing.AllocsPerRun(3, func() { run(r1) })
	a2 := testing.AllocsPerRun(3, func() { run(r2) })
	return (a2 - a1) / float64(r2-r1)
}

// gate fails the test unless cfg's steady-state rounds allocate exactly
// zero. testing.AllocsPerRun counts PROCESS-WIDE mallocs, so unrelated
// background activity (GC bookkeeping, runtime timers) occasionally leaks
// ±1 object into the differential — visible as spurious ±0.01 readings,
// sometimes negative. A real hot-path allocation reproduces on every
// attempt (even an amortized one, like a growing map, is consistently
// non-zero), so only a persistent non-zero reading fails.
func gate(t *testing.T, mode string, cfg dynspread.Config, r1, r2 int) {
	t.Helper()
	var got float64
	for attempt := 0; attempt < 3; attempt++ {
		if got = perRoundAllocs(t, cfg, r1, r2); got == 0 {
			return
		}
	}
	t.Fatalf("%s steady-state round allocates %.2f objects, want 0", mode, got)
}

// TestAllocGateUnicastFloodingRound: Topkis — the unicast flooder (every
// node pushes an unsent token to every neighbor every round) — under the
// registered static adversary must run its steady-state rounds with zero
// allocations.
func TestAllocGateUnicastFloodingRound(t *testing.T) {
	gate(t, "unicast flooding", dynspread.Config{
		N: 8, K: 512,
		Algorithm: dynspread.AlgTopkis,
		Adversary: dynspread.AdvStatic,
		Seed:      7,
	}, 100, 200)
}

// TestAllocGateBroadcastFloodingRound: the paper's flooding algorithm under
// the registered static adversary must run its steady-state local-broadcast
// rounds with zero allocations.
func TestAllocGateBroadcastFloodingRound(t *testing.T) {
	gate(t, "broadcast flooding", dynspread.Config{
		N: 8, K: 64, Sources: 8,
		Algorithm: dynspread.AlgFlooding,
		Adversary: dynspread.AdvStatic,
		Seed:      7,
	}, 100, 200)
}

// --- ns/round regression gates ---
//
// The speed analogue of the allocation gates, in two layers. Both express
// time as a RATIO against an in-process reference workload (a fixed
// memory+ALU sweep independent of the packages under test), so machine speed
// cancels and CI boxes of different generations apply the same bound; the
// baseline is re-measured inside every attempt so a load spike slows both
// sides of the ratio instead of just one.
//
//   - The ENGINE gate bounds the steady-state per-round time of a Topkis
//     trial, measured with the same differential trick as the allocation
//     gates (run(r2) − run(r1), so setup cancels). It catches regressions
//     anywhere on the round hot path — kernels, delivery sort, message
//     copies.
//   - The KERNEL gate bounds one fixed batch of the knowledge-set kernels
//     that dominate those rounds (FirstNotIn, UnionCount, ForEach, fused
//     Insert/Delete probes, across sparse and dense representations). The
//     batch is ~100% kernel work, so a 2× kernel slowdown doubles its
//     ratio — this is the bound the deliberate-slowdown check trips.
//
// Calibration (2026-08, PR 6, on a loaded shared VM): over repeated runs the
// engine ratio measures 0.061–0.070 (N=64 K=2048 Topkis static, rounds
// 200→400) and the kernel-batch ratio 0.84–1.06. A deliberate 2× slowdown
// of every kernel the batch exercises (verified once locally) pushes the
// kernel ratio to 1.80–1.85 — past the bound on every attempt — while the
// engine ratio moves to 0.07–0.10 (kernels are about half the round, and
// the engine bound deliberately carries headroom for the non-kernel half).
const (
	nsPerRoundMaxRatio  = 0.12
	kernelBatchMaxRatio = 1.6
)

// baselineUnitNanos times the reference workload: 64 rotate-xor-sum passes
// over a 64 KiB block, the machine-speed unit the round time is divided by.
func baselineUnitNanos() float64 {
	buf := make([]uint64, 1<<13)
	for i := range buf {
		buf[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	var acc uint64
	best := time.Duration(1<<63 - 1)
	for attempt := 0; attempt < 5; attempt++ {
		start := time.Now()
		for pass := 0; pass < 64; pass++ {
			for _, w := range buf {
				acc += bits.RotateLeft64(w, 13) ^ (w >> 7)
			}
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	baselineSink = acc
	return float64(best.Nanoseconds())
}

var baselineSink uint64

// nsPerRound returns the minimum observed steady-state per-round time of cfg
// between rounds r1 and r2, in nanoseconds.
func nsPerRound(t *testing.T, cfg dynspread.Config, r1, r2 int) float64 {
	t.Helper()
	cfg.Workspace = sim.NewWorkspace()
	run := func(rounds int) time.Duration {
		c := cfg
		c.MaxRounds = rounds
		start := time.Now()
		rep, err := dynspread.Run(c)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Completed {
			t.Fatalf("trial completed within %d rounds; the gate needs steady-state rounds", rounds)
		}
		return elapsed
	}
	run(r2) // warm the workspace (including sparse→dense promotion storage)
	best := func(rounds int) time.Duration {
		d := run(rounds)
		for i := 0; i < 2; i++ {
			if e := run(rounds); e < d {
				d = e
			}
		}
		return d
	}
	perRound := float64((best(r2) - best(r1)).Nanoseconds()) / float64(r2-r1)
	if perRound < 0 {
		perRound = 0
	}
	return perRound
}

// ratioGate runs measure (which must return a time-per-unit-of-work in
// nanoseconds) up to attempts times, re-measuring the baseline each attempt,
// and fails unless some attempt's ratio lands under bound. Taking the min
// over attempts means a load spike has to hit every attempt to produce a
// false failure.
func ratioGate(t *testing.T, what string, bound float64, measure func() float64) {
	t.Helper()
	bestRatio := 1e18
	for attempt := 0; attempt < 3; attempt++ {
		ratio := measure() / baselineUnitNanos()
		if ratio < bestRatio {
			bestRatio = ratio
		}
		if bestRatio <= bound {
			t.Logf("%s ratio %.3f (bound %.3f)", what, bestRatio, bound)
			return
		}
	}
	t.Fatalf("%s costs %.3f baseline units, want <= %.3f — hot-path regression", what, bestRatio, bound)
}

// TestNsPerRoundGateUnicast bounds the steady-state per-round time of the
// kernel-heavy Topkis trial: K=2048 rounds are dominated by FirstNotIn
// sweeps, fused Insert deliveries, and the O(1) completion scan, with the
// delivery sort and message copies making up the rest.
func TestNsPerRoundGateUnicast(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	cfg := dynspread.Config{
		N: 64, K: 2048,
		Algorithm: dynspread.AlgTopkis,
		Adversary: dynspread.AdvStatic,
		Seed:      7,
	}
	ratioGate(t, "steady-state round", nsPerRoundMaxRatio, func() float64 {
		return nsPerRound(t, cfg, 200, 400)
	})
}

// kernelBatchNanos times one fixed batch of the knowledge-set kernels a
// steady Topkis round leans on, across both representations: a sparse
// adaptive set (100/4096 elements) and a promoted dense one (2000/4096).
// The sent-sets hold a PREFIX of each know-set's elements — the shape
// Topkis's lowest-unsent rule produces — so every FirstNotIn sweeps past
// the whole prefix instead of stopping at the first word. Repetition counts
// per kernel are chosen so no single kernel dominates the batch; the batch
// mutates nothing net, so repeated calls measure identical work.
func kernelBatchNanos(t *testing.T) float64 {
	t.Helper()
	const n = 4096
	mk := func(count int) (*adaptive.Set, *bitset.Set) {
		know := adaptive.New(n)
		sent := bitset.New(n)
		for i := 0; i < count; i++ {
			e := i * n / count
			know.Insert(e)
			if i < count/2 {
				sent.Add(e)
			}
		}
		return know, sent
	}
	spKnow, spSent := mk(100)
	dnKnow, dnSent := mk(2000)
	if spKnow.Dense() || !dnKnow.Dense() {
		t.Fatal("kernel batch setup landed on the wrong representations")
	}
	other := bitset.New(n)
	for i := 0; i < n; i += 3 {
		other.Add(i)
	}
	sink := 0
	batch := func() {
		for rep := 0; rep < 16; rep++ {
			// Deep scans: 50 sparse Contains-probes / ~16 dense words each.
			for i := 0; i < 32; i++ {
				sink += spKnow.FirstNotIn(spSent)
				sink += dnKnow.FirstNotIn(dnSent)
			}
			// Word-batched popcount unions over all 64 words each.
			for i := 0; i < 16; i++ {
				sink += spKnow.UnionCount(other)
				sink += dnKnow.UnionCount(other)
			}
			// Membership churn: fused probe pairs across the universe.
			for i := 0; i < 64; i++ {
				probe := 1 + i*61%n
				if spKnow.Insert(probe) {
					spKnow.Delete(probe)
				}
				if dnKnow.Insert(probe) {
					dnKnow.Delete(probe)
				}
			}
			// Element sweeps (delivery/iteration shape).
			spKnow.ForEach(func(e int) { sink += e })
			dnKnow.ForEach(func(e int) { sink += e })
		}
	}
	batch() // warm caches
	best := time.Duration(1<<63 - 1)
	for attempt := 0; attempt < 5; attempt++ {
		start := time.Now()
		batch()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	if sink == 42 {
		t.Log("unreachable, defeats dead-code elimination")
	}
	return float64(best.Nanoseconds())
}

// TestKernelBatchGate bounds the knowledge-set kernels directly: the batch
// is ~100% kernel work, so (unlike the engine-level gate, where kernels are
// about half the round) a 2× kernel slowdown doubles this ratio and fails
// the test with margin to spare. This is the bound the deliberate-slowdown
// verification trips.
func TestKernelBatchGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	ratioGate(t, "kernel batch", kernelBatchMaxRatio, func() float64 {
		return kernelBatchNanos(t)
	})
}
