package dynspread_test

// The allocation gate of the round hot path: once buffers are warm, a
// steady-state round must allocate NOTHING — in unicast mode (value-typed
// messages, counting-sort delivery, workspace buffers) and in broadcast
// mode (choice/heard buffers). The gate measures per-round allocations
// differentially: two executions of the same deterministic trial that
// differ only in MaxRounds allocate identically during setup and during
// their shared prefix, so any difference is exactly the allocation cost of
// the extra steady-state rounds.

import (
	"testing"

	"dynspread"
	"dynspread/internal/sim"
)

// perRoundAllocs returns the average allocations per steady-state round of
// cfg between rounds r1 and r2 (both below the trial's completion round).
func perRoundAllocs(t *testing.T, cfg dynspread.Config, r1, r2 int) float64 {
	t.Helper()
	cfg.Workspace = sim.NewWorkspace()
	run := func(rounds int) {
		c := cfg
		c.MaxRounds = rounds
		rep, err := dynspread.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Completed {
			t.Fatalf("trial completed within %d rounds; the gate needs steady-state rounds", rounds)
		}
	}
	run(r2) // warm the workspace to the largest shape
	a1 := testing.AllocsPerRun(3, func() { run(r1) })
	a2 := testing.AllocsPerRun(3, func() { run(r2) })
	return (a2 - a1) / float64(r2-r1)
}

// gate fails the test unless cfg's steady-state rounds allocate exactly
// zero. testing.AllocsPerRun counts PROCESS-WIDE mallocs, so unrelated
// background activity (GC bookkeeping, runtime timers) occasionally leaks
// ±1 object into the differential — visible as spurious ±0.01 readings,
// sometimes negative. A real hot-path allocation reproduces on every
// attempt (even an amortized one, like a growing map, is consistently
// non-zero), so only a persistent non-zero reading fails.
func gate(t *testing.T, mode string, cfg dynspread.Config, r1, r2 int) {
	t.Helper()
	var got float64
	for attempt := 0; attempt < 3; attempt++ {
		if got = perRoundAllocs(t, cfg, r1, r2); got == 0 {
			return
		}
	}
	t.Fatalf("%s steady-state round allocates %.2f objects, want 0", mode, got)
}

// TestAllocGateUnicastFloodingRound: Topkis — the unicast flooder (every
// node pushes an unsent token to every neighbor every round) — under the
// registered static adversary must run its steady-state rounds with zero
// allocations.
func TestAllocGateUnicastFloodingRound(t *testing.T) {
	gate(t, "unicast flooding", dynspread.Config{
		N: 8, K: 512,
		Algorithm: dynspread.AlgTopkis,
		Adversary: dynspread.AdvStatic,
		Seed:      7,
	}, 100, 200)
}

// TestAllocGateBroadcastFloodingRound: the paper's flooding algorithm under
// the registered static adversary must run its steady-state local-broadcast
// rounds with zero allocations.
func TestAllocGateBroadcastFloodingRound(t *testing.T) {
	gate(t, "broadcast flooding", dynspread.Config{
		N: 8, K: 64, Sources: 8,
		Algorithm: dynspread.AlgFlooding,
		Adversary: dynspread.AdvStatic,
		Seed:      7,
	}, 100, 200)
}
