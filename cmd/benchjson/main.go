// Command benchjson runs the repo's tier-1 benchmarks ("go test -bench")
// and writes the parsed results as one machine-readable JSON document — the
// perf trajectory artifact (BENCH_PR<n>.json) future PRs diff their numbers
// against.
//
// Usage:
//
//	go run ./cmd/benchjson -out BENCH_PR3.json            # full suite, 1 iter
//	go run ./cmd/benchjson -bench 'Sweep64' -benchtime 3x # one family
//
// The tool shells out to the go toolchain in the current module, so it
// needs no dependencies beyond what builds the repo.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark function name without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran with.
	Procs int `json:"procs"`
	// Iterations is testing.B's iteration count.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every reported measure (ns/op, B/op,
	// allocs/op, plus custom b.ReportMetric units like rows/op, msgs/token).
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the written artifact.
type Document struct {
	GoVersion string      `json:"go_version"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	CPUs      int         `json:"cpus"`
	Bench     string      `json:"bench"`
	Benchtime string      `json:"benchtime"`
	Packages  string      `json:"packages"`
	Benches   []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark regexp passed to -bench")
		benchtime = flag.String("benchtime", "1x", "passed to -benchtime")
		pkgs      = flag.String("packages", "./...", "package pattern to benchmark")
		out       = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *bench, "-benchtime", *benchtime, "-benchmem", *pkgs)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fatalf("go test -bench: %v", err)
	}
	benches, err := parse(string(raw))
	if err != nil {
		fatalf("%v", err)
	}
	if len(benches) == 0 {
		fatalf("no benchmark lines in go test output")
	}

	doc := Document{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Bench:     *bench,
		Benchtime: *benchtime,
		Packages:  *pkgs,
		Benches:   benches,
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatalf("%v", err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(benches), *out)
	}
}

// parse extracts benchmark result lines from go test output. A line looks
// like:
//
//	BenchmarkSweep64Serial-8   	       1	  53160383 ns/op	 1116248 B/op	    4486 allocs/op	        64.00 trials/op
func parse(out string) ([]Benchmark, error) {
	var benches []Benchmark
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name, procs := splitProcs(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "Benchmark... --- SKIP" line
		}
		b := Benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
		// The rest is (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			b.Metrics[fields[i+1]] = v
		}
		benches = append(benches, b)
	}
	return benches, nil
}

// splitProcs splits "BenchmarkFoo-8" into ("BenchmarkFoo", 8).
func splitProcs(s string) (string, int) {
	if i := strings.LastIndexByte(s, '-'); i > 0 {
		if p, err := strconv.Atoi(s[i+1:]); err == nil {
			return s[:i], p
		}
	}
	return s, 1
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
