// Command spreadd is the simulation daemon: a long-running HTTP service
// that accepts k-token dissemination trial and sweep jobs as JSON, executes
// them on a bounded job queue over the parallel sweep pool, and serves
// machine-readable results backed by a content-addressed run cache (see
// internal/service for the API).
//
// Quick start:
//
//	spreadd -addr :8080 &
//	curl -s localhost:8080/v1/catalog | head
//	curl -s -X POST localhost:8080/v1/runs -d '{
//	  "trials": [{"n": 32, "k": 32, "algorithm": "single-source",
//	              "adversary": "churn", "seed": 1}]
//	}'
//	curl -s localhost:8080/v1/stats
//
// With -peers the daemon becomes a cluster COORDINATOR instead: the API is
// unchanged, but POST /v1/runs jobs are planned into deterministic shards
// and fanned out across the peer spreadd workers (internal/cluster), with
// per-shard retry and re-dispatch around dead workers. -store additionally
// persists every trial result to an append-only on-disk log keyed by the
// spec's content address, so interrupted sweeps resume where they stopped
// and repeated grids cost zero simulation across daemon restarts:
//
//	spreadd -addr :8081 &   spreadd -addr :8082 &          # workers
//	spreadd -addr :8080 -peers localhost:8081,localhost:8082 -store ./results
//
// Observability: GET /v1/metrics serves Prometheus text exposition merging
// service, sweep-pool (or cluster), and store metrics; GET /v1/readyz gates
// traffic (503 while submissions would be refused) while /v1/healthz stays
// pure liveness; POST /v1/runs?stream=1 streams results as JSONL (spreadctl
// watch/top render these live). -pprof additionally exposes /debug/pprof/.
//
// Small jobs answer synchronously; large ones return 202 with a
// /v1/jobs/{id} to poll. SIGINT/SIGTERM shut the daemon down gracefully:
// the listener stops, in-flight jobs drain (bounded by -drain-timeout, after
// which they are cancelled), and the process exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dynspread/internal/cluster"
	"dynspread/internal/obs"
	"dynspread/internal/service"
	"dynspread/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		parallelism  = flag.Int("parallelism", 0, "sweep workers per job (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 64, "max queued jobs before submissions get 503")
		jobWorkers   = flag.Int("job-workers", 2, "jobs executed concurrently")
		cacheSize    = flag.Int("cache", 4096, "run-cache capacity in results")
		syncLimit    = flag.Int("sync-limit", 16, "largest job answered synchronously")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
		peers        = flag.String("peers", "", "comma-separated spreadd worker base URLs; when set, this daemon coordinates: POST /v1/runs jobs are sharded across the peers")
		storeDir     = flag.String("store", "", "persistent result-store directory (coordinator mode): stored trials are served from disk, new results appended")
		shardSize    = flag.Int("shard-size", 0, "trials per shard in coordinator mode (0 = default)")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default; see docs for the profiling recipe)")
	)
	flag.Parse()

	// One registry merges every layer's metrics — service, sweep pool or
	// cluster coordinator, result store — onto GET /v1/metrics.
	reg := obs.NewRegistry()
	cfg := service.Config{
		Parallelism:    *parallelism,
		QueueDepth:     *queueDepth,
		JobWorkers:     *jobWorkers,
		CacheSize:      *cacheSize,
		SyncTrialLimit: *syncLimit,
		Registry:       reg,
	}

	mode := "worker"
	if *peers != "" {
		workers := service.SplitBaseURLs(*peers)
		ccfg := cluster.Config{Workers: workers, ShardSize: *shardSize, Metrics: reg}
		if *storeDir != "" {
			st, err := store.Open(*storeDir)
			if err != nil {
				log.Fatalf("spreadd: %v", err)
			}
			defer st.Close()
			st.Register(reg)
			ccfg.Store = st
		}
		coord, err := cluster.New(ccfg)
		if err != nil {
			log.Fatalf("spreadd: %v", err)
		}
		cfg.Runner = coord.RunSpecs
		mode = fmt.Sprintf("coordinator over %d workers %v", len(workers), workers)
		if *storeDir != "" {
			mode += " (store " + *storeDir + ")"
		}
	} else if *storeDir != "" {
		log.Fatal("spreadd: -store requires -peers (the result store is wired through the coordinator)")
	}

	svc := service.New(cfg)
	handler := svc.Handler()
	if *pprofOn {
		// Explicit pprof routes on a wrapping mux rather than the
		// DefaultServeMux side effect of importing net/http/pprof — nothing
		// is exposed unless the flag asked for it.
		root := http.NewServeMux()
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		root.Handle("/", handler)
		handler = root
		log.Printf("spreadd: pprof enabled on /debug/pprof/")
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("spreadd: serving on %s as %s (queue %d, %d job workers, cache %d)",
		*addr, mode, *queueDepth, *jobWorkers, *cacheSize)

	select {
	case err := <-errc:
		log.Fatalf("spreadd: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("spreadd: shutting down, draining for up to %s", *drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("spreadd: http shutdown: %v", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("spreadd: drain timed out, in-flight jobs cancelled")
		} else {
			log.Printf("spreadd: drain: %v", err)
		}
	}
	fmt.Println("spreadd: bye")
}
