// Command spreadd is the simulation daemon: a long-running HTTP service
// that accepts k-token dissemination trial and sweep jobs as JSON, executes
// them on a bounded job queue over the parallel sweep pool, and serves
// machine-readable results backed by a content-addressed run cache (see
// internal/service for the API).
//
// Quick start:
//
//	spreadd -addr :8080 &
//	curl -s localhost:8080/v1/catalog | head
//	curl -s -X POST localhost:8080/v1/runs -d '{
//	  "trials": [{"n": 32, "k": 32, "algorithm": "single-source",
//	              "adversary": "churn", "seed": 1}]
//	}'
//	curl -s localhost:8080/v1/stats
//
// With -peers the daemon becomes a cluster COORDINATOR instead: the API is
// unchanged, but POST /v1/runs jobs are planned into deterministic shards
// and fanned out across the peer spreadd workers (internal/cluster), with
// per-shard retry and re-dispatch around dead workers. -store additionally
// persists every trial result to an append-only on-disk log keyed by the
// spec's content address, so interrupted sweeps resume where they stopped
// and repeated grids cost zero simulation across daemon restarts:
//
//	spreadd -addr :8081 &   spreadd -addr :8082 &          # workers
//	spreadd -addr :8080 -peers localhost:8081,localhost:8082 -store ./results
//
// Observability: GET /v1/metrics serves Prometheus text exposition merging
// service, sweep-pool (or cluster), and store metrics; GET /v1/readyz gates
// traffic (503 while submissions would be refused) while /v1/healthz stays
// pure liveness; POST /v1/runs?stream=1 streams results as JSONL (spreadctl
// watch/top render these live). -pprof additionally exposes /debug/pprof/.
//
// Small jobs answer synchronously; large ones return 202 with a
// /v1/jobs/{id} to poll. SIGINT/SIGTERM shut the daemon down gracefully:
// the listener stops, in-flight jobs drain (bounded by -drain-timeout, after
// which they are cancelled), and the process exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dynspread/internal/cluster"
	"dynspread/internal/obs"
	"dynspread/internal/service"
	"dynspread/internal/store"
	"dynspread/internal/tracing"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		parallelism  = flag.Int("parallelism", 0, "sweep workers per job (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 64, "max queued jobs before submissions get 503")
		jobWorkers   = flag.Int("job-workers", 2, "jobs executed concurrently")
		cacheSize    = flag.Int("cache", 4096, "run-cache capacity in results")
		syncLimit    = flag.Int("sync-limit", 16, "largest job answered synchronously")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
		peers        = flag.String("peers", "", "comma-separated spreadd worker base URLs; when set, this daemon coordinates: POST /v1/runs jobs are sharded across the peers")
		storeDir     = flag.String("store", "", "persistent store directory: captured debug profiles always land here; in coordinator mode stored trials are also served from disk and new results appended")
		shardSize    = flag.Int("shard-size", 0, "trials per shard in coordinator mode (0 = default)")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default; see docs for the profiling recipe)")
		traceRing    = flag.Int("trace-ring", 4096, "finished spans kept in memory for GET /v1/traces (0 disables tracing)")
		traceLog     = flag.String("trace-log", "", "append every finished span as a JSON line to this file")
		logFormat    = flag.String("log-format", "text", "structured log format: text or json")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		log.Fatalf("spreadd: %v", err)
	}

	// One registry merges every layer's metrics — service, sweep pool or
	// cluster coordinator, result store, tracer — onto GET /v1/metrics.
	reg := obs.NewRegistry()

	// One tracer per process: service, sweep pool, and cluster layers all
	// record into the same ring, which is what GET /v1/traces serves.
	var tracer *tracing.Tracer
	if *traceRing > 0 {
		tcfg := tracing.Config{Service: "spreadd@" + *addr, RingSize: *traceRing, Registry: reg}
		if *traceLog != "" {
			f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatalf("spreadd: open -trace-log: %v", err)
			}
			defer f.Close()
			tcfg.Output = f
		}
		tracer = tracing.New(tcfg)
	}

	cfg := service.Config{
		Parallelism:    *parallelism,
		QueueDepth:     *queueDepth,
		JobWorkers:     *jobWorkers,
		CacheSize:      *cacheSize,
		SyncTrialLimit: *syncLimit,
		Registry:       reg,
		Tracer:         tracer,
		Logger:         logger,
	}

	// One store serves two planes: coordinator-mode result persistence and
	// the debug-profile blobs every mode can capture (POST /v1/debug/profile).
	// A worker-mode daemon with -store therefore no longer errors — it just
	// gets the profile plane without the result log.
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Fatalf("spreadd: %v", err)
		}
		defer st.Close()
		st.Register(reg)
		cfg.Profiles = st
	}

	mode := "worker"
	if *peers != "" {
		workers := service.SplitBaseURLs(*peers)
		ccfg := cluster.Config{Workers: workers, ShardSize: *shardSize, Metrics: reg, Tracer: tracer, Logger: logger, Store: cfg.Profiles}
		coord, err := cluster.New(ccfg)
		if err != nil {
			log.Fatalf("spreadd: %v", err)
		}
		cfg.Runner = coord.RunSpecs
		// The coordinator's trace endpoint assembles the distributed trace:
		// local spans plus every worker's, fetched on demand.
		cfg.TraceFetch = coord.FetchSpans
		mode = fmt.Sprintf("coordinator over %d workers %v", len(workers), workers)
	}
	if *storeDir != "" {
		mode += " (store " + *storeDir + ")"
	}

	svc := service.New(cfg)
	handler := svc.Handler()
	if *pprofOn {
		// Explicit pprof routes on a wrapping mux rather than the
		// DefaultServeMux side effect of importing net/http/pprof — nothing
		// is exposed unless the flag asked for it.
		root := http.NewServeMux()
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		root.Handle("/", handler)
		handler = root
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "mode", mode,
		"queue", *queueDepth, "job_workers", *jobWorkers, "cache", *cacheSize,
		"tracing", tracer != nil)

	select {
	case err := <-errc:
		log.Fatalf("spreadd: %v", err)
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutting down", "drain_timeout", drainTimeout.String())

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Warn("http shutdown", "error", err.Error())
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("drain timed out, in-flight jobs cancelled")
		} else {
			logger.Warn("drain", "error", err.Error())
		}
	}
	fmt.Println("spreadd: bye")
}

// buildLogger constructs the daemon's structured logger: text (the default,
// human-first) or json (one object per line, machine-first), gated at the
// given minimum level. Every layer below shares this logger, so job and
// dispatch lines carry the same trace_id/span_id fields the trace endpoint
// serves.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}
