// Command lowerbound runs the Section 2 lower-bound construction with full
// per-round tracing: flooding (or a random broadcaster) against the strongly
// adaptive free-edge adversary, recording per round the number of
// broadcasters, free-graph components, potential Φ(t) and token learnings.
// The CSV output plots the staircase growth of the potential that the
// Ω(n²/log²n) amortized-message bound rests on.
//
// Usage:
//
//	lowerbound -n 32 -alg flooding        # summary to stderr, CSV to stdout
//	lowerbound -n 32 -csv=false           # summary only
package main

import (
	"flag"
	"fmt"
	"os"

	"dynspread/internal/adversary"
	"dynspread/internal/core"
	"dynspread/internal/graph"
	"dynspread/internal/sim"
	"dynspread/internal/token"
	"dynspread/internal/trace"
)

func main() {
	var (
		n       = flag.Int("n", 32, "number of nodes (k = n, n-gossip start)")
		alg     = flag.String("alg", "flooding", "broadcast algorithm: flooding | random")
		seed    = flag.Int64("seed", 1, "random seed")
		emitCSV = flag.Bool("csv", true, "emit per-round CSV to stdout")
	)
	flag.Parse()

	assign, err := token.Gossip(*n)
	if err != nil {
		fatal(err)
	}
	var factory sim.BroadcastFactory
	switch *alg {
	case "flooding":
		factory = core.NewFlooding(0)
	case "random":
		factory = core.NewRandomBroadcast()
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *alg))
	}

	adv := adversary.NewFreeEdge(true, 1, *seed+7)
	rec := trace.New()
	res, err := sim.RunBroadcast(sim.BroadcastConfig{
		Assign:    assign,
		Factory:   factory,
		Adversary: adv,
		Seed:      *seed,
		MaxRounds: 8 * (*n) * (*n),
		OnRound: func(r int, g *graph.Graph, choices []token.ID, learned int64) {
			b := 0
			for _, c := range choices {
				if c != token.None {
					b++
				}
			}
			rec.Record(r, "broadcasters", float64(b))
			rec.Record(r, "edges", float64(g.M()))
			rec.Record(r, "learnings", float64(learned))
		},
	})
	if err != nil {
		fatal(err)
	}

	st := adv.Stats()
	fmt.Fprintf(os.Stderr, "n=%d k=%d alg=%s adversary=%s\n", *n, *n, *alg, adv.Name())
	fmt.Fprintf(os.Stderr, "completed=%v rounds=%d broadcasts=%d amortized=%.1f msgs/token (n²=%d)\n",
		res.Completed, res.Rounds, res.Metrics.Broadcasts,
		res.Metrics.AmortizedPerToken(*n), (*n)*(*n))
	fmt.Fprintf(os.Stderr, "Φ(0)=%d  maxΦ=%d  max components=%d  sparse rounds=%d (ΔΦ=%d)  bound violations=%d\n",
		st.InitialPhi, int64(*n)*int64(*n), st.MaxComponents, st.SparseRounds, st.SparseProgress, st.BoundViolations)
	if !adv.SetupOK() {
		fmt.Fprintln(os.Stderr, "warning: Φ(0) > 0.8nk — probabilistic-method event failed")
	}
	if *emitCSV {
		fmt.Print(rec.CSV())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lowerbound:", err)
	os.Exit(1)
}
