// Command lowerbound runs the Section 2 lower-bound construction with full
// per-round tracing: flooding (or a random broadcaster) against the strongly
// adaptive free-edge adversary, recording per round the number of
// broadcasters, free-graph components, potential Φ(t) and token learnings.
// The CSV output plots the staircase growth of the potential that the
// Ω(n²/log²n) amortized-message bound rests on.
//
// Usage:
//
//	lowerbound -n 32 -alg flooding        # summary to stderr, CSV to stdout
//	lowerbound -n 32 -csv=false           # summary only
//
// The broadcast algorithm and the free-edge adversary are resolved through
// the component registry ("random" is accepted as shorthand for
// "random-broadcast").
package main

import (
	"flag"
	"fmt"
	"os"

	"dynspread/internal/adversary"
	_ "dynspread/internal/core" // register the bundled algorithms
	"dynspread/internal/graph"
	"dynspread/internal/registry"
	"dynspread/internal/sim"
	"dynspread/internal/token"
	"dynspread/internal/trace"
)

func main() {
	var (
		n       = flag.Int("n", 32, "number of nodes (k = n, n-gossip start)")
		alg     = flag.String("alg", "flooding", "broadcast algorithm: flooding | random-broadcast")
		seed    = flag.Int64("seed", 1, "random seed")
		emitCSV = flag.Bool("csv", true, "emit per-round CSV to stdout")
	)
	flag.Parse()

	assign, err := token.Gossip(*n)
	if err != nil {
		fatal(err)
	}
	algName := *alg
	if algName == "random" { // historical shorthand
		algName = "random-broadcast"
	}
	params := registry.Params{N: *n, K: *n, Sources: *n, Seed: *seed}
	algSpec, err := registry.LookupAlgorithm(algName)
	if err != nil {
		fatal(err)
	}
	if algSpec.Mode != registry.Broadcast {
		fatal(fmt.Errorf("%q is not a broadcast algorithm", algName))
	}
	factory, err := algSpec.Broadcast(params)
	if err != nil {
		fatal(err)
	}
	advSpec, err := registry.LookupAdversary("free-edge")
	if err != nil {
		fatal(err)
	}
	badv, err := advSpec.Broadcast(params)
	if err != nil {
		fatal(err)
	}
	// The tracer needs the adversary's potential-function bookkeeping, which
	// only the concrete free-edge type exposes.
	adv, ok := badv.(*adversary.FreeEdge)
	if !ok {
		fatal(fmt.Errorf("free-edge registry entry built a %T, not *adversary.FreeEdge", badv))
	}

	rec := trace.New()
	res, err := sim.RunBroadcast(sim.BroadcastConfig{
		Assign:    assign,
		Factory:   factory,
		Adversary: adv,
		Seed:      *seed,
		MaxRounds: 8 * (*n) * (*n),
		OnRound: func(r int, g *graph.Graph, choices []token.ID, learned int64) {
			b := 0
			for _, c := range choices {
				if c != token.None {
					b++
				}
			}
			rec.Record(r, "broadcasters", float64(b))
			rec.Record(r, "edges", float64(g.M()))
			rec.Record(r, "learnings", float64(learned))
		},
	})
	if err != nil {
		fatal(err)
	}

	st := adv.Stats()
	fmt.Fprintf(os.Stderr, "n=%d k=%d alg=%s adversary=%s\n", *n, *n, algName, adv.Name())
	fmt.Fprintf(os.Stderr, "completed=%v rounds=%d broadcasts=%d amortized=%.1f msgs/token (n²=%d)\n",
		res.Completed, res.Rounds, res.Metrics.Broadcasts,
		res.Metrics.AmortizedPerToken(*n), (*n)*(*n))
	fmt.Fprintf(os.Stderr, "Φ(0)=%d  maxΦ=%d  max components=%d  sparse rounds=%d (ΔΦ=%d)  bound violations=%d\n",
		st.InitialPhi, int64(*n)*int64(*n), st.MaxComponents, st.SparseRounds, st.SparseProgress, st.BoundViolations)
	if !adv.SetupOK() {
		fmt.Fprintln(os.Stderr, "warning: Φ(0) > 0.8nk — probabilistic-method event failed")
	}
	if *emitCSV {
		fmt.Print(rec.CSV())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lowerbound:", err)
	os.Exit(1)
}
