// Command spreadctl is the operator's client for the spreadd/cluster tier:
// it submits trial grids, enumerates and watches jobs, and runs resumable
// client-side distributed sweeps against a pool of workers.
//
//	spreadctl submit -server http://localhost:8080 -grid grid.json -watch
//	spreadctl jobs   -server http://localhost:8080
//	spreadctl job    -server http://localhost:8080 -id j000003
//	spreadctl watch  -server http://localhost:8080 j000003
//	spreadctl top    -server http://localhost:8080
//	spreadctl trace  -server http://localhost:8080 j000003
//	spreadctl sweep  -workers localhost:8081,localhost:8082 \
//	                 -store ./results -grid grid.json -out results.json
//	spreadctl catalog -server http://localhost:8080
//
// A grid file is the wire GridSpec JSON (the same object POST /v1/runs
// accepts under "grid"); "-" reads it from stdin:
//
//	{"ns": [32, 64], "ks": [32], "algorithms": ["single-source"],
//	 "adversaries": ["churn"], "seeds": [1, 2, 3]}
//
// submit drives one server (which may itself be a -peers coordinator);
// sweep embeds the coordinator in the client, so any pool of plain spreadd
// workers becomes a cluster with no coordinator daemon, and -store makes
// the sweep resumable: re-running after an interruption (or re-running a
// finished grid) skips every trial whose result is already on disk.
// Results go to stdout (or -out) as a JSON array in deterministic grid
// order; progress and summaries go to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"dynspread/internal/cluster"
	"dynspread/internal/service"
	"dynspread/internal/store"
	"dynspread/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch cmd := os.Args[1]; cmd {
	case "submit":
		err = cmdSubmit(ctx, os.Args[2:])
	case "jobs":
		err = cmdJobs(ctx, os.Args[2:])
	case "job":
		err = cmdJob(ctx, os.Args[2:])
	case "watch":
		err = cmdWatch(ctx, os.Args[2:])
	case "inspect":
		err = cmdInspect(ctx, os.Args[2:])
	case "top":
		err = cmdTop(ctx, os.Args[2:])
	case "trace":
		err = cmdTrace(ctx, os.Args[2:])
	case "sweep":
		err = cmdSweep(ctx, os.Args[2:])
	case "catalog":
		err = cmdCatalog(ctx, os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "spreadctl: unknown command %q\n\n", cmd)
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "spreadctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: spreadctl <command> [flags]

commands:
  submit   submit a grid to one server (-server, -grid, [-async] [-watch] [-out])
  jobs     list a server's jobs with status counts (-server)
  job      show one job (-server, -id)
  watch    stream a job live over JSONL (-server, -id or positional, [-out])
  inspect  render a recorded job's per-round dynamics as terminal sparklines
           (-server, -id or positional, [-width n] [-table])
  top      refreshing one-screen server view from /v1/metrics (-server,
           [-interval d] [-once])
  trace    render a job's distributed trace as a waterfall (-server,
           -id or positional job/trace ID)
  sweep    distributed client-side sweep over workers (-workers, -grid,
           [-store dir] [-shard-size n] [-out file])
  catalog  list a server's registered algorithms/adversaries/scenarios (-server)
`)
	os.Exit(2)
}

func newClient(server string) (*service.Client, error) {
	server = service.NormalizeBaseURL(server)
	if server == "" {
		return nil, fmt.Errorf("-server is required")
	}
	return &service.Client{BaseURL: server, Timeout: 2 * time.Minute}, nil
}

// readGrid loads a GridSpec from path ("-" = stdin).
func readGrid(path string) (*wire.GridSpec, error) {
	if path == "" {
		return nil, fmt.Errorf("-grid is required (a GridSpec JSON file, or - for stdin)")
	}
	var rd io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rd = f
	}
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var g wire.GridSpec
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("decode grid: %w", err)
	}
	return &g, nil
}

// writeResults emits the result array as indented JSON to out ("" = stdout).
func writeResults(out string, results []wire.TrialResult) error {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func summarize(results []wire.TrialResult) {
	msgs := cluster.Aggregate(results, cluster.Messages)
	rounds := cluster.Aggregate(results, cluster.Rounds)
	amort := cluster.Aggregate(results, cluster.AmortizedPerToken)
	fmt.Fprintf(os.Stderr, "trials    %d\n", len(results))
	fmt.Fprintf(os.Stderr, "messages  mean %.1f  median %.1f  max %.0f\n", msgs.Mean, msgs.Median, msgs.Max)
	fmt.Fprintf(os.Stderr, "rounds    mean %.1f  median %.1f  max %.0f\n", rounds.Mean, rounds.Median, rounds.Max)
	fmt.Fprintf(os.Stderr, "amortized mean %.2f messages/token\n", amort.Mean)
}

func cmdSubmit(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server := fs.String("server", "", "spreadd base URL")
	grid := fs.String("grid", "", "GridSpec JSON file (- for stdin)")
	async := fs.Bool("async", false, "force queued (202) execution")
	watch := fs.Bool("watch", false, "poll a queued job until it finishes and print its results")
	out := fs.String("out", "", "write results JSON here instead of stdout")
	record := fs.Bool("record", false, "attach a flight recorder: every trial's result carries a per-round dynamics series (inspect with `spreadctl inspect`); recorded jobs bypass the server's result cache")
	recordStride := fs.Int("record-stride", 0, "record every Nth round (0 = every round; implies -record)")
	recordCapacity := fs.Int("record-capacity", 0, "recorder ring capacity in samples, keeping the last N (0 = server default; implies -record)")
	fs.Parse(args)

	c, err := newClient(*server)
	if err != nil {
		return err
	}
	g, err := readGrid(*grid)
	if err != nil {
		return err
	}
	req := wire.RunRequest{Grid: g, Async: *async}
	if *record || *recordStride > 0 || *recordCapacity > 0 {
		req.Record = &wire.RecordSpec{Stride: *recordStride, Capacity: *recordCapacity}
	}
	st, err := c.Run(ctx, req)
	if err != nil {
		return err
	}
	if st.State == service.JobDone {
		summarize(st.Results)
		return writeResults(*out, st.Results)
	}
	fmt.Fprintf(os.Stderr, "job %s %s (%d trials)\n", st.ID, st.State, st.Total)
	if !*watch {
		fmt.Fprintf(os.Stderr, "follow with: spreadctl job -server %s -id %s\n", *server, st.ID)
		return nil
	}
	final, err := watchJob(ctx, c, st.ID)
	if err != nil {
		return err
	}
	summarize(final.Results)
	return writeResults(*out, final.Results)
}

// watchJob polls a job to a terminal state, drawing progress on stderr.
func watchJob(ctx context.Context, c *service.Client, id string) (service.JobStatus, error) {
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		fmt.Fprintf(os.Stderr, "\rjob %s %-8s %d/%d", st.ID, st.State, st.Completed, st.Total)
		switch st.State {
		case service.JobDone:
			fmt.Fprintln(os.Stderr)
			return st, nil
		case service.JobFailed, service.JobCanceled:
			fmt.Fprintln(os.Stderr)
			return st, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
		}
		select {
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr)
			return st, ctx.Err()
		case <-time.After(250 * time.Millisecond):
		}
	}
}

func cmdJobs(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("jobs", flag.ExitOnError)
	server := fs.String("server", "", "spreadd base URL")
	fs.Parse(args)
	c, err := newClient(*server)
	if err != nil {
		return err
	}
	jl, err := c.Jobs(ctx)
	if err != nil {
		return err
	}
	for _, st := range jl.Jobs {
		fmt.Printf("%-10s %-8s %5d/%-5d", st.ID, st.State, st.Completed, st.Total)
		if st.Error != "" {
			fmt.Printf("  %s", st.Error)
		}
		fmt.Println()
	}
	var states []string
	for state, n := range jl.ByState {
		states = append(states, fmt.Sprintf("%s=%d", state, n))
	}
	if len(states) > 0 {
		fmt.Fprintf(os.Stderr, "%d jobs (%s)\n", len(jl.Jobs), strings.Join(states, " "))
	} else {
		fmt.Fprintln(os.Stderr, "no jobs")
	}
	return nil
}

func cmdJob(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("job", flag.ExitOnError)
	server := fs.String("server", "", "spreadd base URL")
	id := fs.String("id", "", "job ID")
	out := fs.String("out", "", "write results JSON here instead of stdout")
	fs.Parse(args)
	c, err := newClient(*server)
	if err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("-id is required")
	}
	st, err := c.Job(ctx, *id)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "job %s %s %d/%d", st.ID, st.State, st.Completed, st.Total)
	if st.Error != "" {
		fmt.Fprintf(os.Stderr, " (%s)", st.Error)
	}
	fmt.Fprintln(os.Stderr)
	if st.State == service.JobDone {
		return writeResults(*out, st.Results)
	}
	return nil
}

func cmdSweep(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	workers := fs.String("workers", "", "comma-separated spreadd worker base URLs")
	grid := fs.String("grid", "", "GridSpec JSON file (- for stdin)")
	storeDir := fs.String("store", "", "persistent result-store directory; makes the sweep resumable")
	shardSize := fs.Int("shard-size", 0, "trials per shard (0 = default)")
	out := fs.String("out", "", "write results JSON here instead of stdout")
	fs.Parse(args)

	pool := service.SplitBaseURLs(*workers)
	if len(pool) == 0 {
		return fmt.Errorf("-workers is required")
	}
	g, err := readGrid(*grid)
	if err != nil {
		return err
	}
	specs, err := g.Trials()
	if err != nil {
		return err
	}

	ccfg := cluster.Config{Workers: pool, ShardSize: *shardSize}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			return err
		}
		defer st.Close()
		ccfg.Store = st
		fmt.Fprintf(os.Stderr, "store %s: %d results on disk\n", *storeDir, st.Len())
	}
	coord, err := cluster.New(ccfg)
	if err != nil {
		return err
	}

	start := time.Now()
	var completed atomic.Int64
	results, err := coord.Run(ctx, specs, func(int, wire.TrialResult) {
		// The callback is concurrent; the atomic carries the count and only
		// round counts draw, so interleaved writes stay readable.
		n := completed.Add(1)
		if n%10 == 0 || int(n) == len(specs) {
			fmt.Fprintf(os.Stderr, "\r%d/%d trials", n, len(specs))
		}
	})
	fmt.Fprintln(os.Stderr)
	if err != nil {
		if *storeDir != "" {
			fmt.Fprintf(os.Stderr, "sweep interrupted; re-run the same command to resume from %s\n", *storeDir)
		}
		return err
	}
	st := coord.Stats()
	alive, total := coord.Workers()
	fmt.Fprintf(os.Stderr, "done in %s: %d store hits, %d dispatched over %d shards (%d retries, workers %d/%d alive, %d worker cache hits)\n",
		time.Since(start).Round(time.Millisecond), st.StoreHits, st.Dispatched, st.Shards, st.Retries, alive, total, st.WorkerCacheHits)
	summarize(results)
	return writeResults(*out, results)
}

func cmdCatalog(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("catalog", flag.ExitOnError)
	server := fs.String("server", "", "spreadd base URL")
	fs.Parse(args)
	c, err := newClient(*server)
	if err != nil {
		return err
	}
	cat, err := c.Catalog(ctx)
	if err != nil {
		return err
	}
	fmt.Println("algorithms:")
	for _, a := range cat.Algorithms {
		fmt.Printf("  %-18s (%s)  %s\n", a.Name, a.Mode, a.Doc)
	}
	fmt.Println("adversaries:")
	for _, a := range cat.Adversaries {
		fmt.Printf("  %-18s (%s)  %s\n", a.Name, a.Modes, a.Doc)
	}
	fmt.Println("scenarios:")
	for _, s := range cat.Scenarios {
		fmt.Printf("  %-18s n=%-5d k=%-5d %s\n", s.Name, s.N, s.K, s.Doc)
	}
	return nil
}
