package main

import (
	"strings"
	"testing"
	"time"

	"dynspread/internal/tracing"
	"dynspread/internal/wire"
)

// TestRenderTrace: the waterfall nests children under parents, draws one
// lane label per service, renders events as sub-lines, and promotes spans
// with a missing parent to annotated roots.
func TestRenderTrace(t *testing.T) {
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	ms := func(d int) time.Time { return t0.Add(time.Duration(d) * time.Millisecond) }
	tr := wire.Trace{
		TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
		Spans: []tracing.SpanData{
			{TraceID: "t", SpanID: "aaaaaaaaaaaaaaaa", Name: "job", Service: "spreadd:8080",
				Start: ms(0), End: ms(10), Attrs: map[string]string{"state": "done"}},
			{TraceID: "t", SpanID: "bbbbbbbbbbbbbbbb", ParentID: "aaaaaaaaaaaaaaaa",
				Name: "queue-wait", Service: "spreadd:8080", Start: ms(0), End: ms(1)},
			{TraceID: "t", SpanID: "cccccccccccccccc", ParentID: "aaaaaaaaaaaaaaaa",
				Name: "run", Service: "spreadd:8080", Start: ms(1), End: ms(10),
				Events: []tracing.EventData{{Time: ms(5), Name: "retry",
					Attrs: map[string]string{"worker": "http://w1", "attempt": "1"}}}},
			{TraceID: "t", SpanID: "dddddddddddddddd", ParentID: "cccccccccccccccc",
				Name: "shard", Service: "spreadd:8080", Start: ms(2), End: ms(9)},
			{TraceID: "t", SpanID: "eeeeeeeeeeeeeeee", ParentID: "dddddddddddddddd",
				Name: "job", Service: "spreadd:8081", Start: ms(3), End: ms(8)},
			{TraceID: "t", SpanID: "ffffffffffffffff", ParentID: "0123456789abcdef",
				Name: "stray", Service: "spreadd:8082", Start: ms(4), End: ms(5)},
		},
	}
	var b strings.Builder
	renderTrace(&b, tr)
	out := b.String()

	for _, want := range []string{
		"trace 4bf92f3577b34da6a3ce929d0e0e4736  6 spans  3 services",
		"spreadd:8080  job",
		"spreadd:8080    queue-wait", // depth 1
		"spreadd:8080    run",        // depth 1
		"spreadd:8080      shard",    // depth 2
		"spreadd:8081        job",    // the worker's lane, depth 3
		"stray (parent missing)",     // orphan promoted to root
		"· retry @5.0ms",             // event sub-line with offset
		"attempt=1 worker=http://w1", // event attrs, sorted
	} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall misses %q\n%s", want, out)
		}
	}
}

// TestRenderTraceEmpty: an empty trace explains itself instead of printing
// a bare header.
func TestRenderTraceEmpty(t *testing.T) {
	var b strings.Builder
	renderTrace(&b, wire.Trace{TraceID: "abc"})
	if !strings.Contains(b.String(), "no spans") {
		t.Fatalf("empty trace rendered as %q", b.String())
	}
}

// TestBar: extent bars stay exactly traceBarWidth wide and every span is
// visible, however brief.
func TestBar(t *testing.T) {
	for _, tc := range []struct{ off, dur, wall time.Duration }{
		{0, 10 * time.Millisecond, 10 * time.Millisecond},
		{9 * time.Millisecond, time.Microsecond, 10 * time.Millisecond},
		{10 * time.Millisecond, 0, 10 * time.Millisecond}, // off == wall
		{0, 0, 0}, // degenerate instantaneous trace
	} {
		got := bar(tc.off, tc.dur, tc.wall)
		if len(got) != traceBarWidth {
			t.Errorf("bar(%v,%v,%v) width %d, want %d", tc.off, tc.dur, tc.wall, len(got), traceBarWidth)
		}
		if !strings.Contains(got, "=") {
			t.Errorf("bar(%v,%v,%v) = %q has no extent", tc.off, tc.dur, tc.wall, got)
		}
	}
}
