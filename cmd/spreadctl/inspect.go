package main

// `spreadctl inspect` renders a done recorded job's flight-recorder series
// in the terminal: one block per trial with sparkline curves of knowledge
// density (Φ/nk) and messages per round, or — with -table — the full sample
// table. The series come embedded on the job's results (GET /v1/jobs/{id}),
// which also supplies the resolved n and k the density normalization needs.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"dynspread/internal/service"
	"dynspread/internal/sim"
	"dynspread/internal/wire"
)

func cmdInspect(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	server := fs.String("server", "", "spreadd base URL")
	id := fs.String("id", "", "job ID (or pass it as the positional argument)")
	width := fs.Int("width", 60, "sparkline width in cells")
	table := fs.Bool("table", false, "print the full per-sample table instead of sparklines")
	fs.Parse(args)
	if *id == "" && fs.NArg() > 0 {
		*id = fs.Arg(0)
	}
	if *id == "" {
		return fmt.Errorf("inspect needs a job ID: spreadctl inspect -server URL <job>")
	}
	if *width < 8 {
		*width = 8
	}
	c, err := newClient(*server)
	if err != nil {
		return err
	}
	st, err := c.Job(ctx, *id)
	if err != nil {
		return err
	}
	if st.State != service.JobDone {
		return fmt.Errorf("job %s is %s; inspect needs a done job", *id, st.State)
	}
	recorded := 0
	for i, res := range st.Results {
		if i > 0 {
			fmt.Println()
		}
		inspectTrial(i, res, *width, *table)
		if res.RoundSeries != nil {
			recorded++
		}
	}
	if recorded == 0 {
		fmt.Fprintf(os.Stderr, "job %s carries no round series; submit with -record to capture them\n", *id)
	}
	return nil
}

func inspectTrial(i int, res wire.TrialResult, width int, table bool) {
	t := res.Trial
	name := t.Algorithm
	if t.Scenario != "" {
		name = t.Scenario + "/" + name
	}
	fmt.Printf("trial %d: %s vs %s  n=%d k=%d seed=%d  rounds=%d messages=%d\n",
		i, name, res.Adversary, t.N, t.K, t.Seed, res.Rounds, res.Metrics.Messages)
	s := res.RoundSeries
	if s == nil || s.Len() == 0 {
		fmt.Println("  (no round series)")
		return
	}
	samples := s.Samples()
	fmt.Printf("  samples %d (stride %d, ring %d", s.Len(), s.Stride, s.Capacity)
	if s.Dropped > 0 {
		fmt.Printf(", %d oldest dropped", s.Dropped)
	}
	fmt.Println(")")
	if table {
		inspectTable(samples, t)
		return
	}
	nk := float64(t.N) * float64(t.K)
	density := make([]float64, len(samples))
	msgs := make([]float64, len(samples))
	prevRound := 0
	if s.Dropped > 0 {
		// The window of the oldest retained sample starts where the dropped
		// prefix ended, not at round 0.
		prevRound = samples[0].Round - s.Stride
	}
	for j, sm := range samples {
		if nk > 0 {
			density[j] = float64(sm.Known) / nk
		}
		// Messages is a window delta; divide by the window's round span for a
		// per-round rate the sparkline can compare across uneven windows (the
		// final sample's window is usually shorter than a full stride).
		span := sm.Round - prevRound
		if span < 1 {
			span = 1
		}
		msgs[j] = float64(sm.Messages) / float64(span)
		prevRound = sm.Round
	}
	fmt.Printf("  density  %s  %.3f→%.3f\n", spark(density, width, 0, 1), density[0], density[len(density)-1])
	lo, hi := bounds(msgs)
	fmt.Printf("  msgs/rnd %s  max %.1f\n", spark(msgs, width, 0, hi), hi)
	_ = lo
}

func inspectTable(samples []sim.RoundSample, t wire.TrialSpec) {
	nk := float64(t.N) * float64(t.K)
	fmt.Printf("  %7s %9s %9s %8s %9s %8s %6s %6s %9s\n",
		"round", "messages", "learned", "arrived", "known", "density", "prom", "demo", "ns")
	for _, sm := range samples {
		density := 0.0
		if nk > 0 {
			density = float64(sm.Known) / nk
		}
		fmt.Printf("  %7d %9d %9d %8d %9d %8.4f %6d %6d %9d\n",
			sm.Round, sm.Messages, sm.Learned, sm.Arrived, sm.Known, density,
			sm.Promotions, sm.Demotions, sm.Nanos)
	}
}

// sparkRunes are the eight-level block glyphs sparklines quantize into.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// spark renders xs as a fixed-width sparkline, scaling values into [lo, hi]
// (hi <= lo falls back to the data's own bounds). Wider series are
// downsampled by per-cell mean; narrower ones render one cell per value.
func spark(xs []float64, width int, lo, hi float64) string {
	if len(xs) == 0 {
		return ""
	}
	cells := xs
	if len(xs) > width {
		cells = make([]float64, width)
		for c := range cells {
			// Cell c averages the half-open bucket of samples it covers.
			start, end := c*len(xs)/width, (c+1)*len(xs)/width
			if end == start {
				end = start + 1
			}
			var sum float64
			for _, v := range xs[start:end] {
				sum += v
			}
			cells[c] = sum / float64(end-start)
		}
	}
	if hi <= lo {
		lo, hi = bounds(xs)
	}
	var b strings.Builder
	for _, v := range cells {
		level := 0
		if hi > lo {
			level = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if level < 0 {
			level = 0
		}
		if level >= len(sparkRunes) {
			level = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[level])
	}
	return b.String()
}

func bounds(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
