package main

// `spreadctl trace` renders one distributed trace (GET /v1/traces/{id}) as
// a text waterfall: per-service lanes, span nesting as indentation, a
// proportional extent bar per span, and point events (retries, worker
// deaths) as timestamped sub-lines. Against a coordinator the trace already
// contains the workers' spans, so a single command shows a sharded job end
// to end: queue wait vs run on the coordinator, one lane per worker.

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"dynspread/internal/wire"
)

func cmdTrace(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	server := fs.String("server", "", "spreadd base URL")
	id := fs.String("id", "", "job ID or 32-hex trace ID (or pass it as the positional argument)")
	fs.Parse(args)
	if *id == "" && fs.NArg() > 0 {
		*id = fs.Arg(0)
	}
	if *id == "" {
		return fmt.Errorf("trace needs a job or trace ID: spreadctl trace -server URL <job>")
	}
	c, err := newClient(*server)
	if err != nil {
		return err
	}
	tr, err := c.Trace(ctx, *id)
	if err != nil {
		return err
	}
	renderTrace(os.Stdout, tr)
	return nil
}

const traceBarWidth = 30

// renderTrace draws the waterfall. Spans whose parent is absent from the
// set (evicted from a ring, or recorded by an unreachable worker) are
// promoted to roots and marked, so partial traces still render.
func renderTrace(w io.Writer, tr wire.Trace) {
	spans := tr.Spans
	if len(spans) == 0 {
		fmt.Fprintf(w, "trace %s: no spans (expired from the ring, or tracing disabled)\n", tr.TraceID)
		return
	}
	byID := make(map[string]int, len(spans))
	for i, s := range spans {
		byID[s.SpanID] = i
	}
	children := make(map[string][]int)
	var roots []int
	orphan := make(map[int]bool)
	for i, s := range spans {
		if s.ParentID != "" {
			if _, ok := byID[s.ParentID]; ok {
				children[s.ParentID] = append(children[s.ParentID], i)
				continue
			}
			orphan[i] = true
		}
		roots = append(roots, i)
	}
	byStart := func(idx []int) {
		sort.SliceStable(idx, func(a, b int) bool { return spans[idx[a]].Start.Before(spans[idx[b]].Start) })
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}

	t0, t1 := spans[0].Start, spans[0].End
	services := map[string]bool{}
	svcWidth := len("SERVICE")
	for _, s := range spans {
		if s.Start.Before(t0) {
			t0 = s.Start
		}
		if s.End.After(t1) {
			t1 = s.End
		}
		services[s.Service] = true
		if len(s.Service) > svcWidth {
			svcWidth = len(s.Service)
		}
	}
	wall := t1.Sub(t0)
	fmt.Fprintf(w, "trace %s  %d spans  %d services  wall %s\n\n",
		tr.TraceID, len(spans), len(services), fmtDur(wall))
	fmt.Fprintf(w, "%-*s  %-34s %9s %9s\n", svcWidth, "SERVICE", "SPAN", "START", "DURATION")

	var walk func(i, depth int)
	walk = func(i, depth int) {
		s := spans[i]
		name := strings.Repeat("  ", depth) + s.Name
		if orphan[i] {
			name += " (parent missing)"
		}
		tail := ""
		if v := s.Attrs["error"]; v != "" {
			tail = "  error=" + v
		} else if v := s.Attrs["state"]; v != "" && v != "done" {
			tail = "  state=" + v
		}
		fmt.Fprintf(w, "%-*s  %-34s %9s %9s  |%s|%s\n",
			svcWidth, s.Service, name,
			fmtDur(s.Start.Sub(t0)), fmtDur(s.Duration()),
			bar(s.Start.Sub(t0), s.Duration(), wall), tail)
		for _, ev := range s.Events {
			fmt.Fprintf(w, "%-*s  %s· %s @%s%s\n",
				svcWidth, "", strings.Repeat("  ", depth+1), ev.Name,
				fmtDur(ev.Time.Sub(t0)), fmtAttrs(ev.Attrs))
		}
		for _, c := range children[s.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// bar renders a span's extent proportionally on the trace's wall clock.
func bar(off, dur, wall time.Duration) string {
	if wall <= 0 {
		return strings.Repeat("=", traceBarWidth)
	}
	pad := int(int64(traceBarWidth) * int64(off) / int64(wall))
	n := int(int64(traceBarWidth) * int64(dur) / int64(wall))
	if n < 1 {
		n = 1 // every span is visible, however brief
	}
	if pad > traceBarWidth-1 {
		pad = traceBarWidth - 1
	}
	if pad+n > traceBarWidth {
		n = traceBarWidth - pad
	}
	return strings.Repeat(" ", pad) + strings.Repeat("=", n) + strings.Repeat(" ", traceBarWidth-pad-n)
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// fmtAttrs renders event attributes as sorted " k=v" pairs.
func fmtAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(" " + k + "=" + attrs[k])
	}
	return b.String()
}
