package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dynspread/internal/obs"
	"dynspread/internal/service"
	"dynspread/internal/wire"
)

// TestFollowJobReconnect: a stream that drops mid-job (server closes the
// response without a done event) is reattached with backoff, the follow
// completes on the second stream, and — because a reconnect can lose
// per-trial events — the final results come from GET /v1/jobs/{id}.
func TestFollowJobReconnect(t *testing.T) {
	results := []wire.TrialResult{{Rounds: 1}, {Rounds: 2}, {Rounds: 3}}
	var streams atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/jx/stream", func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		switch streams.Add(1) {
		case 1:
			// First attach: fresh job, one result, then the stream dies.
			enc.Encode(wire.StreamEvent{Type: "job", ID: "jx", State: "running", Total: 3})
			enc.Encode(wire.StreamEvent{Type: "result", Index: 0, Result: &results[0]})
		default:
			// Reattach: the job has progressed; it finishes on this stream.
			enc.Encode(wire.StreamEvent{Type: "job", ID: "jx", State: "running", Total: 3, Completed: 2})
			enc.Encode(wire.StreamEvent{Type: "result", Index: 2, Result: &results[2]})
			enc.Encode(wire.StreamEvent{Type: "done", ID: "jx", State: "done", Completed: 3, Total: 3})
		}
	})
	mux.HandleFunc("GET /v1/jobs/jx", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.JobStatus{
			ID: "jx", State: service.JobDone, Total: 3, Completed: 3, Results: results,
		})
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	saved := followBackoff
	followBackoff = []time.Duration{time.Millisecond}
	defer func() { followBackoff = saved }()

	c := &service.Client{BaseURL: hs.URL}
	var notes []string
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := followJob(ctx, c, "jx",
		func(string, int, int) {},
		func(note string) { notes = append(notes, note) })
	if err != nil {
		t.Fatalf("followJob: %v", err)
	}
	if st.State != service.JobDone || len(st.Results) != 3 {
		t.Fatalf("final status = %+v", st)
	}
	for i, r := range st.Results {
		if r.Rounds != results[i].Rounds {
			t.Fatalf("result %d = %+v, want %+v (full set must come from /v1/jobs after a reconnect)", i, r, results[i])
		}
	}
	if got := streams.Load(); got != 2 {
		t.Fatalf("stream attached %d times, want 2", got)
	}
	reconnected := false
	for _, n := range notes {
		if strings.Contains(n, "reconnecting") {
			reconnected = true
		}
	}
	if !reconnected {
		t.Fatalf("no reconnect notification; notes = %q", notes)
	}
}

// TestRateClampsAcrossRestart: `spreadctl top` derives rates from scrape
// deltas; a counter that moved backward between two scrapes means the
// daemon restarted (all its counters reset), and the rate for that window
// must clamp to zero instead of going hugely negative.
func TestRateClampsAcrossRestart(t *testing.T) {
	scrape := func(trials, messages float64) []obs.Family {
		text := fmt.Sprintf(
			"# HELP dynspread_trials_total Trials simulated.\n"+
				"# TYPE dynspread_trials_total counter\n"+
				"dynspread_trials_total %g\n"+
				"# HELP dynspread_messages_total Messages sent.\n"+
				"# TYPE dynspread_messages_total counter\n"+
				"dynspread_messages_total %g\n", trials, messages)
		fams, err := obs.ParseText(strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		return fams
	}

	// Normal window: trials advanced 100→150 over 10s. Restart window:
	// messages regressed 5000→40 (reset + a little fresh traffic).
	prev, cur := scrape(100, 5000), scrape(150, 40)

	r, ok := rate(cur, prev, "dynspread_trials_total", 10*time.Second)
	if !ok || r != 5 {
		t.Fatalf("advancing counter: rate = %v, %v; want 5, true", r, ok)
	}
	r, ok = rate(cur, prev, "dynspread_messages_total", 10*time.Second)
	if !ok || r != 0 {
		t.Fatalf("regressed counter: rate = %v, %v; want clamped 0, true", r, ok)
	}

	// No previous scrape or a zero window yields no rate at all.
	if _, ok := rate(cur, nil, "dynspread_trials_total", 10*time.Second); ok {
		t.Fatal("rate reported without a previous scrape")
	}
	if _, ok := rate(cur, prev, "dynspread_trials_total", 0); ok {
		t.Fatal("rate reported for an empty window")
	}
}

// TestFollowJobPermanentError: a 404 (unknown job) ends the follow
// immediately instead of retrying forever.
func TestFollowJobPermanentError(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/nope/stream", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"unknown job"}`)
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	c := &service.Client{BaseURL: hs.URL}
	_, err := followJob(context.Background(), c, "nope", func(string, int, int) {}, nil)
	if !service.IsPermanent(err) {
		t.Fatalf("followJob on a 404 returned %v, want a permanent HTTP error", err)
	}
}
