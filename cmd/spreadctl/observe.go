package main

// The live operator views: `spreadctl watch` follows one job over the
// JSONL stream API, and `spreadctl top` renders a refreshing one-screen
// summary of a daemon from GET /v1/metrics + GET /v1/jobs.

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"dynspread/internal/obs"
	"dynspread/internal/service"
	"dynspread/internal/wire"
)

// cmdWatch streams one job live (GET /v1/jobs/{id}/stream): per-trial
// progress to stderr, and — when the job completes — its results to stdout
// or -out, exactly as `spreadctl job` would print them. A stream that drops
// mid-job (worker restart, LB hiccup) is reattached with backoff; if the
// per-trial events were incomplete for any reason (mid-run attach, overflow
// to summary mode, a reconnect), the full result set is fetched from
// GET /v1/jobs/{id} instead, so watch's output is identical either way.
func cmdWatch(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	server := fs.String("server", "", "spreadd base URL")
	id := fs.String("id", "", "job ID (or pass it as the positional argument)")
	out := fs.String("out", "", "write results JSON here instead of stdout")
	fs.Parse(args)
	if *id == "" && fs.NArg() > 0 {
		*id = fs.Arg(0)
	}
	if *id == "" {
		return fmt.Errorf("watch needs a job ID: spreadctl watch -server URL <job>")
	}
	c, err := newClient(*server)
	if err != nil {
		return err
	}
	st, err := followJob(ctx, c, *id, func(state string, completed, total int) {
		fmt.Fprintf(os.Stderr, "\rjob %s %-8s %d/%d", *id, state, completed, total)
	}, func(note string) {
		fmt.Fprintf(os.Stderr, "\rjob %s: %s\n", *id, note)
	})
	fmt.Fprintln(os.Stderr)
	if err != nil {
		return err
	}
	if st.State != service.JobDone {
		return fmt.Errorf("job %s %s: %s", *id, st.State, st.Error)
	}
	summarize(st.Results)
	return writeResults(*out, st.Results)
}

// followBackoff is followJob's reconnect schedule: attempt i sleeps
// followBackoff[min(i, len-1)].
var followBackoff = []time.Duration{200 * time.Millisecond, 500 * time.Millisecond, time.Second, 2 * time.Second}

// followJob follows a job's stream to a terminal state, reattaching with
// backoff whenever the stream drops mid-job — a worker restart must not
// kill an operator's watch. progress is called on every stream event;
// notify (optional) reports overflow and reconnects. Permanent HTTP errors
// (the job is unknown) and context cancellation end the follow; everything
// else retries. When the per-trial events were incomplete — mid-run attach,
// overflow, any reconnect — the returned status carries results fetched
// from GET /v1/jobs/{id}, so callers always see the full set for done jobs.
func followJob(ctx context.Context, c *service.Client, id string, progress func(state string, completed, total int), notify func(note string)) (service.JobStatus, error) {
	if notify == nil {
		notify = func(string) {}
	}
	lossless := true
	for attempt := 0; ; attempt++ {
		var (
			results   []wire.TrialResult
			final     *wire.StreamEvent
			completed int
			total     int
		)
		err := c.JobStream(ctx, id, func(ev wire.StreamEvent) error {
			switch ev.Type {
			case "job":
				total = ev.Total
				completed = ev.Completed
				results = make([]wire.TrialResult, total)
				// Attaching mid-run: indices completed before the stream
				// opened never arrive as events, so stream results are
				// complete only from a fresh first attach.
				if ev.Completed != 0 || attempt > 0 {
					lossless = false
				}
				progress(ev.State, completed, total)
			case "result":
				if ev.Result != nil && ev.Index >= 0 && ev.Index < len(results) {
					results[ev.Index] = *ev.Result
				}
				completed++
				progress("running", completed, total)
			case "overflow":
				lossless = false
				notify("stream overflowed; falling back to summaries")
			case "summary":
				completed = ev.Completed
				total = ev.Total
				progress("running", completed, total)
			case "done":
				completed = ev.Completed
				total = ev.Total
				progress(ev.State, completed, total)
				e := ev
				final = &e
			}
			return nil
		})
		if final != nil {
			st := service.JobStatus{
				ID: id, State: service.JobState(final.State),
				Completed: final.Completed, Total: final.Total,
				Error: final.Error, Results: results,
			}
			if st.State == service.JobDone && !lossless {
				fetched, ferr := c.Job(ctx, id)
				if ferr != nil {
					return st, ferr
				}
				return fetched, nil
			}
			return st, nil
		}
		// The stream dropped (or ended) without a done event.
		if err != nil && service.IsPermanent(err) {
			return service.JobStatus{}, err
		}
		if ctx.Err() != nil {
			return service.JobStatus{}, ctx.Err()
		}
		lossless = false
		backoff := followBackoff[min(attempt, len(followBackoff)-1)]
		notify(fmt.Sprintf("stream dropped, reconnecting in %s (attempt %d)", backoff, attempt+1))
		select {
		case <-ctx.Done():
			return service.JobStatus{}, ctx.Err()
		case <-time.After(backoff):
		}
	}
}

// cmdTop renders a refreshing one-screen view of a daemon: queue and worker
// occupancy, jobs by state, cache hit rate, sweep-pool throughput (with
// trials/s and rounds/s rates computed from scrape-to-scrape deltas), and —
// on a coordinator — the per-worker health table.
func cmdTop(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	server := fs.String("server", "", "spreadd base URL")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	fs.Parse(args)
	c, err := newClient(*server)
	if err != nil {
		return err
	}

	var prev []obs.Family
	var prevAt time.Time
	for {
		raw, err := c.Metrics(ctx)
		if err != nil {
			return err
		}
		fams, err := obs.ParseText(bytes.NewReader(raw))
		if err != nil {
			return fmt.Errorf("parse /v1/metrics: %w", err)
		}
		jl, jobsErr := c.Jobs(ctx)
		ready := "ready"
		if rerr := c.Ready(ctx); rerr != nil {
			var he *service.HTTPError
			if errors.As(rerr, &he) && he.Message != "" {
				ready = he.Message
			} else {
				ready = "not ready"
			}
		}
		now := time.Now()
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		renderTop(c.BaseURL, ready, fams, prev, now.Sub(prevAt), jl, jobsErr)
		prev, prevAt = fams, now
		if *once {
			return nil
		}
		select {
		case <-ctx.Done():
			fmt.Println()
			return nil
		case <-time.After(*interval):
		}
	}
}

// mval reads one bare-named sample (nil labels = the unlabeled series).
func mval(fams []obs.Family, name string, labels map[string]string) float64 {
	f := obs.Find(fams, name)
	if f == nil {
		return 0
	}
	v, _ := f.Value(labels)
	return v
}

// rate computes (cur-prev)/elapsed for a counter across two scrapes,
// clamped at zero: a counter that moved BACKWARD between scrapes means the
// daemon restarted (its counters reset), and the top view should show a
// quiet 0 for that window, not a large negative rate.
func rate(cur, prev []obs.Family, name string, elapsed time.Duration) (float64, bool) {
	if prev == nil || elapsed <= 0 {
		return 0, false
	}
	d := mval(cur, name, nil) - mval(prev, name, nil)
	if d < 0 {
		d = 0
	}
	return d / elapsed.Seconds(), true
}

func renderTop(base, ready string, fams, prev []obs.Family, elapsed time.Duration, jl service.JobList, jobsErr error) {
	fmt.Printf("spreadd %s  (%s)  %s\n\n", base, ready, time.Now().Format("15:04:05"))
	fmt.Printf("queue   %.0f/%.0f   busy %.0f   streams %.0f\n",
		mval(fams, "dynspread_service_queue_depth", nil),
		mval(fams, "dynspread_service_queue_capacity", nil),
		mval(fams, "dynspread_service_busy_workers", nil),
		mval(fams, "dynspread_service_streams_active", nil))

	if jobsErr == nil {
		fmt.Printf("jobs    ")
		for _, st := range []service.JobState{service.JobQueued, service.JobRunning, service.JobDone, service.JobFailed, service.JobCanceled} {
			fmt.Printf("%s %d  ", st, jl.ByState[st])
		}
		fmt.Println()
	} else {
		fmt.Printf("jobs    (unavailable: %v)\n", jobsErr)
	}

	hits := mval(fams, "dynspread_service_cache_hits_total", nil)
	misses := mval(fams, "dynspread_service_cache_misses_total", nil)
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = 100 * hits / (hits + misses)
	}
	fmt.Printf("cache   hits %.0f  misses %.0f  (%.1f%% hit)  size %.0f/%.0f\n",
		hits, misses, hitRate,
		mval(fams, "dynspread_service_cache_size", nil),
		mval(fams, "dynspread_service_cache_capacity", nil))

	// Sweep pool (worker mode). The duration histogram's _sum/_count give
	// the mean trial time; rates come from scrape deltas.
	if pool := obs.Find(fams, "dynspread_sweep_trials_completed_total"); pool != nil {
		done := mval(fams, "dynspread_sweep_trials_completed_total", nil)
		failed := mval(fams, "dynspread_sweep_trials_failed_total", nil)
		rounds := mval(fams, "dynspread_sweep_rounds_total", nil)
		fmt.Printf("sweep   trials %.0f done / %.0f failed   rounds %.3g", done, failed, rounds)
		if durs := obs.Find(fams, "dynspread_sweep_trial_duration_seconds"); durs != nil {
			var sum, count float64
			for _, s := range durs.Samples {
				switch s.Name {
				case "dynspread_sweep_trial_duration_seconds_sum":
					sum = s.Value
				case "dynspread_sweep_trial_duration_seconds_count":
					count = s.Value
				}
			}
			if count > 0 {
				fmt.Printf("   mean trial %.1fms", 1000*sum/count)
			}
		}
		fmt.Println()
		if tr, ok := rate(fams, prev, "dynspread_sweep_trials_completed_total", elapsed); ok {
			rr, _ := rate(fams, prev, "dynspread_sweep_rounds_total", elapsed)
			fmt.Printf("rate    %.1f trials/s   %.3g rounds/s   (over last %s)\n",
				tr, rr, elapsed.Round(time.Millisecond))
		}
	}

	// Cluster coordinator: per-worker health table.
	if alive := obs.Find(fams, "dynspread_cluster_worker_alive"); alive != nil {
		fmt.Printf("cluster trials %.0f  store hits %.0f  dispatched %.0f  shards %.0f/%.0f  retries %.0f\n",
			mval(fams, "dynspread_cluster_trials_total", nil),
			mval(fams, "dynspread_cluster_store_hits_total", nil),
			mval(fams, "dynspread_cluster_dispatched_trials_total", nil),
			mval(fams, "dynspread_cluster_shards_completed_total", nil),
			mval(fams, "dynspread_cluster_shards_total", nil),
			mval(fams, "dynspread_cluster_retries_total", nil))
		fmt.Println("workers:")
		var urls []string
		for _, s := range alive.Samples {
			if w := s.Labels["worker"]; w != "" {
				urls = append(urls, w)
			}
		}
		sort.Strings(urls)
		for _, w := range urls {
			labels := map[string]string{"worker": w}
			state := "alive"
			if v, _ := alive.Value(labels); v == 0 {
				state = "DEAD"
			}
			fmt.Printf("  %-30s %-5s dispatch %.0f  retries %.0f  failures %.0f\n", w, state,
				mval(fams, "dynspread_cluster_worker_dispatch_total", labels),
				mval(fams, "dynspread_cluster_worker_retries_total", labels),
				mval(fams, "dynspread_cluster_worker_failures_total", labels))
		}
	}

	if st := obs.Find(fams, "dynspread_store_results"); st != nil {
		fmt.Printf("store   results %.0f in %.0f segments  hits %.0f/%.0f gets  appended %.3g bytes\n",
			mval(fams, "dynspread_store_results", nil),
			mval(fams, "dynspread_store_segments", nil),
			mval(fams, "dynspread_store_hits_total", nil),
			mval(fams, "dynspread_store_gets_total", nil),
			mval(fams, "dynspread_store_appended_bytes_total", nil))
	}
}
