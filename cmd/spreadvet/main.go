// Command spreadvet is the repository's multichecker: a vet tool bundling
// the custom analyzers from internal/analysis/passes. It speaks the
// `go vet -vettool` unit-checker protocol, so the usual invocation is
//
//	go build -o bin/spreadvet ./cmd/spreadvet
//	go vet -vettool=$PWD/bin/spreadvet ./...
//
// Run `spreadvet -help` for the list of analyzers; each can be disabled
// with -<name>=false.
package main

import (
	"dynspread/internal/analysis"
	"dynspread/internal/analysis/passes/hotpath"
	"dynspread/internal/analysis/passes/metricname"
	"dynspread/internal/analysis/passes/registryname"
	"dynspread/internal/analysis/passes/spanend"
	"dynspread/internal/analysis/passes/wiretag"
)

func main() {
	// Full analysis only for this module's packages: the go command also
	// runs the tool over every dependency (standard library included) to
	// collect facts, and those runs must stay O(1).
	analysis.OnlyModule = "dynspread"
	analysis.Main(
		hotpath.Analyzer,
		registryname.Analyzer,
		spanend.Analyzer,
		wiretag.Analyzer,
		metricname.Analyzer,
	)
}
