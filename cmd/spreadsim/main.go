// Command spreadsim runs one k-token dissemination simulation and prints the
// communication-cost report.
//
// Usage:
//
//	spreadsim -n 64 -k 128 -s 1 -alg single-source -adv churn -seed 1
//	spreadsim -list          # print every registered algorithm and adversary
//
// Algorithms and adversaries are resolved through the component registry;
// -list shows everything the binary was built with.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dynspread"
	"dynspread/internal/registry"
)

func main() {
	var (
		n         = flag.Int("n", 32, "number of nodes")
		k         = flag.Int("k", 32, "number of tokens")
		s         = flag.Int("s", 1, "number of source nodes")
		alg       = flag.String("alg", "single-source", "algorithm (see -list)")
		adv       = flag.String("adv", "churn", "adversary (see -list)")
		seed      = flag.Int64("seed", 1, "random seed")
		maxRounds = flag.Int("max-rounds", 0, "round cap (0 = generous default)")
		sigma     = flag.Int("sigma", 3, "edge stability for the churn adversary")
		asJSON    = flag.Bool("json", false, "emit the report as JSON")
		list      = flag.Bool("list", false, "list registered algorithms and adversaries, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("algorithms:")
		for _, spec := range registry.Algorithms() {
			fmt.Printf("  %-18s (%s)  %s\n", spec.Name, spec.Mode, spec.Doc)
		}
		fmt.Println("adversaries:")
		for _, spec := range registry.Adversaries() {
			fmt.Printf("  %-18s (%s)  %s\n", spec.Name, spec.Modes, spec.Doc)
		}
		return
	}

	rep, err := dynspread.Run(dynspread.Config{
		N: *n, K: *k, Sources: *s,
		Algorithm: dynspread.Algorithm(*alg),
		Adversary: dynspread.Adversary(*adv),
		Seed:      *seed,
		MaxRounds: *maxRounds,
		Sigma:     *sigma,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spreadsim:", err)
		os.Exit(1)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "spreadsim:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("algorithm      %s\n", *alg)
	fmt.Printf("adversary      %s\n", rep.AdversaryName)
	fmt.Printf("instance       n=%d k=%d s=%d seed=%d\n", *n, *k, *s, *seed)
	fmt.Printf("completed      %v in %d rounds\n", rep.Completed, rep.Rounds)
	m := rep.Metrics
	fmt.Printf("messages       %d (tokens %d, requests %d, completeness %d, walks %d, control %d)\n",
		m.Messages, m.TokenPayloads, m.RequestPayloads, m.CompletenessPayloads, m.WalkPayloads, m.ControlPayloads)
	fmt.Printf("broadcasts     %d\n", m.Broadcasts)
	fmt.Printf("learnings      %d\n", m.Learnings)
	fmt.Printf("TC(E)          %d insertions, %d removals\n", m.TC, m.Removals)
	fmt.Printf("amortized      %.2f messages/token\n", rep.Amortized)
	fmt.Printf("competitive    %.0f residual (Messages − 1·TC)\n", rep.CompetitiveResidual)
}
