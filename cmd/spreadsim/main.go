// Command spreadsim runs one k-token dissemination simulation and prints the
// communication-cost report.
//
// Usage:
//
//	spreadsim -n 64 -k 128 -s 1 -alg single-source -adv churn -seed 1
//	spreadsim -scenario token-stream -seed 3       # registered workload
//	spreadsim -scenario quickstart -record run.jsonl
//	spreadsim -replay run.jsonl -alg single-source # replay recorded dynamics
//	spreadsim -scenario streaming -json            # machine-readable result
//	spreadsim -n 64 -k 64 -remote http://host:8080 # execute on a spreadd
//	spreadsim -list   # print every registered algorithm, adversary, scenario
//
// Algorithms, adversaries, and scenarios are resolved through their
// registries; -list shows everything the binary was built with. -record
// writes the run's per-round edge events as JSONL; -replay substitutes such
// a trace for the adversary, reproducing the recorded topology exactly (and,
// with the same algorithm and seed, the recorded metrics). -json emits one
// JSON object on stdout — the resolved trial plus its metrics, in the same
// per-trial result schema the spreadd service returns (see
// internal/service), so scripted pipelines can consume either
// interchangeably.
//
// -remote sends the SAME invocation to a spreadd daemon (or a -peers
// cluster coordinator) instead of simulating in-process: the trial travels
// as its wire spec, and the result comes back through the identical output
// path — the human report or, with -json, the identical TrialResult object.
// Runs are deterministic functions of their spec, so local and remote
// execution of one invocation print the same numbers. -record and -replay
// stay local-only: graph traces are not part of the wire schema.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"dynspread"
	"dynspread/internal/registry"
	"dynspread/internal/scenario"
	"dynspread/internal/service"
)

func main() {
	var (
		n         = flag.Int("n", 32, "number of nodes")
		k         = flag.Int("k", 32, "number of tokens")
		s         = flag.Int("s", 1, "number of source nodes")
		alg       = flag.String("alg", "single-source", "algorithm (see -list)")
		adv       = flag.String("adv", "churn", "adversary (see -list)")
		scen      = flag.String("scenario", "", "registered scenario; supplies shape, dynamics, and arrival schedule (see -list)")
		seed      = flag.Int64("seed", 1, "random seed")
		maxRounds = flag.Int("max-rounds", 0, "round cap (0 = generous default)")
		sigma     = flag.Int("sigma", 3, "edge stability for the churn adversary")
		record    = flag.String("record", "", "write the run's dynamics as a JSONL graph trace to this file")
		replay    = flag.String("replay", "", "replay a JSONL graph trace as the dynamics (overrides -adv)")
		remote    = flag.String("remote", "", "execute on this spreadd/cluster base URL instead of in-process")
		asJSON    = flag.Bool("json", false, "emit one JSON object: resolved trial + metrics (the spreadd TrialResult schema)")
		list      = flag.Bool("list", false, "list registered algorithms, adversaries, and scenarios, then exit")
	)
	flag.Parse()
	flagSet := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { flagSet[f.Name] = true })

	if *list {
		fmt.Println("algorithms:")
		for _, spec := range registry.Algorithms() {
			fmt.Printf("  %-18s (%s)  %s\n", spec.Name, spec.Mode, spec.Doc)
		}
		fmt.Println("adversaries:")
		for _, spec := range registry.Adversaries() {
			fmt.Printf("  %-18s (%s)  %s\n", spec.Name, spec.Modes, spec.Doc)
		}
		fmt.Println("scenarios:")
		for _, spec := range scenario.Scenarios() {
			fmt.Printf("  %-18s n=%-5d k=%-5d s=%-4d %-14s arrivals=%-34s alg=%s\n",
				spec.Name, spec.N, spec.K, spec.NumSources(), spec.DynamicsName(), spec.ScheduleName(), spec.DefaultAlgorithm)
			fmt.Printf("  %-18s %s\n", "", spec.Doc)
		}
		return
	}

	cfg := dynspread.Config{
		Seed:      *seed,
		MaxRounds: *maxRounds,
		Sigma:     *sigma,
	}
	if *scen != "" {
		// The scenario defines the shape and the defaults; -alg, -adv, and
		// -sigma act as overrides only when given explicitly.
		cfg.Scenario = dynspread.Scenario(*scen)
		if !flagSet["sigma"] {
			cfg.Sigma = 0 // let the scenario's own Sigma apply
		}
		if flagSet["alg"] {
			cfg.Algorithm = dynspread.Algorithm(*alg)
		}
		if flagSet["adv"] {
			cfg.Adversary = dynspread.Adversary(*adv)
		}
		for _, name := range []string{"n", "k", "s"} {
			if flagSet[name] {
				fatalf("-%s cannot be combined with -scenario (the scenario defines the shape)", name)
			}
		}
	} else {
		cfg.N, cfg.K, cfg.Sources = *n, *k, *s
		cfg.Algorithm = dynspread.Algorithm(*alg)
		cfg.Adversary = dynspread.Adversary(*adv)
	}
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatalf("%v", err)
		}
		tr, err := dynspread.ReadTrace(f)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
		cfg.Replay = tr
	}

	// Execute: in-process by default, on a spreadd daemon with -remote.
	// Either way the rest of main consumes one TrialResult, so the output
	// paths (-json and the human report) are shared verbatim.
	var (
		res *dynspread.TrialResult
		err error
	)
	if *remote != "" {
		if *record != "" || *replay != "" {
			fatalf("-record/-replay cannot be combined with -remote (graph traces are not part of the wire schema)")
		}
		res, err = runRemote(cfg, *remote)
	} else if *record != "" {
		var tr *dynspread.GraphTrace
		res, tr, err = dynspread.RunFullRecorded(cfg)
		if err == nil {
			err = writeTrace(*record, tr)
		}
	} else {
		res, err = dynspread.RunFull(cfg)
	}
	if err != nil {
		fatalf("%v", err)
	}

	if *asJSON {
		// One JSON object on stdout: the resolved trial plus metrics, in the
		// spreadd service's per-trial result schema (dynspread.TrialResult).
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if *scen != "" {
		fmt.Printf("scenario       %s\n", *scen)
	}
	algName := *alg
	if *scen != "" && !flagSet["alg"] {
		algName = "(scenario default)"
	}
	fmt.Printf("algorithm      %s\n", algName)
	fmt.Printf("adversary      %s\n", res.Adversary)
	if *remote != "" {
		fmt.Printf("executed on    %s\n", *remote)
	}
	if *scen == "" {
		fmt.Printf("instance       n=%d k=%d s=%d seed=%d\n", *n, *k, *s, *seed)
	} else {
		fmt.Printf("instance       seed=%d\n", *seed)
	}
	fmt.Printf("completed      %v in %d rounds\n", res.Completed, res.Rounds)
	m := res.Metrics
	fmt.Printf("messages       %d (tokens %d, requests %d, completeness %d, walks %d, control %d)\n",
		m.Messages, m.TokenPayloads, m.RequestPayloads, m.CompletenessPayloads, m.WalkPayloads, m.ControlPayloads)
	fmt.Printf("broadcasts     %d\n", m.Broadcasts)
	fmt.Printf("learnings      %d\n", m.Learnings)
	fmt.Printf("TC(E)          %d insertions, %d removals\n", m.TC, m.Removals)
	fmt.Printf("amortized      %.2f messages/token\n", res.AmortizedPerToken)
	fmt.Printf("competitive    %.0f residual (Messages − 1·TC)\n", res.CompetitiveResidual)
	if *record != "" {
		fmt.Printf("recorded       %d rounds of dynamics -> %s\n", res.Rounds, *record)
	}
}

// runRemote executes the invocation's wire spec on a spreadd daemon via the
// service client, waiting out queued jobs. The spec carries exactly what
// the flags resolved to (classic runs always have a concrete algorithm and
// adversary from the flag defaults; scenario runs leave blanks for the
// scenario's own defaults), so local and remote execution run the same
// trial.
func runRemote(cfg dynspread.Config, base string) (*dynspread.TrialResult, error) {
	spec := dynspread.TrialSpec{
		Scenario:  string(cfg.Scenario),
		N:         cfg.N,
		K:         cfg.K,
		Sources:   cfg.Sources,
		Algorithm: string(cfg.Algorithm),
		Adversary: string(cfg.Adversary),
		Seed:      cfg.Seed,
		MaxRounds: cfg.MaxRounds,
		Sigma:     cfg.Sigma,
	}
	client := &service.Client{BaseURL: service.NormalizeBaseURL(base), Timeout: 2 * time.Minute}
	ctx := context.Background()
	st, err := client.Run(ctx, dynspread.RunRequest{Trials: []dynspread.TrialSpec{spec}})
	if err != nil {
		return nil, err
	}
	if st.State != service.JobDone {
		if st, err = client.WaitJob(ctx, st.ID, 0); err != nil {
			return nil, err
		}
	}
	if st.State != service.JobDone {
		return nil, fmt.Errorf("remote job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	if len(st.Results) != 1 {
		return nil, fmt.Errorf("remote job %s returned %d results for 1 trial", st.ID, len(st.Results))
	}
	return &st.Results[0], nil
}

func writeTrace(path string, tr *dynspread.GraphTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "spreadsim: "+format+"\n", args...)
	os.Exit(1)
}
