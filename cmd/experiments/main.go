// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the per-experiment index) and prints them
// as markdown (default) or aligned ASCII. Its markdown output is the source
// of EXPERIMENTS.md.
//
// Usage:
//
//	experiments              # full scale, markdown
//	experiments -quick       # small instances, seconds
//	experiments -only E3,E4  # subset
//	experiments -ascii       # terminal tables
//	experiments -csvdir out  # additionally write one CSV per experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dynspread/internal/experiments"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "run small instances (seconds instead of minutes)")
		ascii  = flag.Bool("ascii", false, "render aligned ASCII instead of markdown")
		only   = flag.String("only", "", "comma-separated experiment IDs (e.g. E1,E6)")
		seed   = flag.Int64("seed", 42, "random seed")
		csvDir = flag.String("csvdir", "", "directory to also write one CSV per experiment (created if missing)")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	failed := false
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s: %s ...\n", r.ID, r.Name)
		tb, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", r.ID, err)
			failed = true
			continue
		}
		if *ascii {
			fmt.Println(tb.ASCII())
		} else {
			fmt.Println(tb.Markdown())
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "csvdir: %v\n", err)
				failed = true
				continue
			}
			path := filepath.Join(*csvDir, strings.ToLower(r.ID)+".csv")
			if err := os.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "csv %s: %v\n", path, err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
