package dynspread

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSingleSourceChurn(t *testing.T) {
	rep, err := Run(Config{
		N: 16, K: 24, Sources: 1,
		Algorithm: AlgSingleSource,
		Adversary: AdvChurn,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("incomplete: %+v", rep)
	}
	if rep.Amortized <= 0 || rep.Metrics.Messages == 0 {
		t.Fatalf("bad report: %+v", rep)
	}
	if rep.CompetitiveResidual != float64(rep.Metrics.Messages)-float64(rep.Metrics.TC) {
		t.Fatal("competitive residual mismatch")
	}
	if !strings.Contains(rep.AdversaryName, "churn") {
		t.Fatalf("adversary name = %q", rep.AdversaryName)
	}
}

func TestRunDefaultsToSingleSourceStatic(t *testing.T) {
	rep, err := Run(Config{N: 8, K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("incomplete")
	}
}

func TestRunAllUnicastAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{AlgSingleSource, AlgMultiSource, AlgOblivious, AlgSpanningTree, AlgTopkis} {
		srcs := 1
		if alg == AlgMultiSource || alg == AlgOblivious {
			srcs = 4
		}
		adv := AdvStatic
		rep, err := Run(Config{
			N: 12, K: 12, Sources: srcs,
			Algorithm: alg, Adversary: adv, Seed: 3,
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !rep.Completed {
			t.Fatalf("%s: incomplete", alg)
		}
	}
}

func TestRunBroadcastAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{AlgFlooding, AlgRandomBroadcast} {
		rep, err := Run(Config{
			N: 10, K: 10, Sources: 10,
			Algorithm: alg, Adversary: AdvStatic, Seed: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !rep.Completed {
			t.Fatalf("%s: incomplete", alg)
		}
		if rep.Metrics.Broadcasts != rep.Metrics.Messages {
			t.Fatalf("%s: broadcast accounting mismatch", alg)
		}
	}
}

func TestRunFloodingVsFreeEdge(t *testing.T) {
	rep, err := Run(Config{
		N: 12, K: 12, Sources: 12,
		Algorithm: AlgFlooding, Adversary: AdvFreeEdge, Seed: 5,
		MaxRounds: 12 * 12 * 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("flooding must complete against the free-edge adversary")
	}
}

func TestRunAllObliviousAdversaries(t *testing.T) {
	for _, adv := range []Adversary{
		AdvStatic, AdvChurn, AdvRewire, AdvMarkovian, AdvRegular,
		AdvRotatingStar, AdvMobility, AdvRequestCutter,
	} {
		rep, err := Run(Config{
			N: 10, K: 8, Algorithm: AlgSingleSource, Adversary: adv, Seed: 6,
			MaxRounds: 500000,
		})
		if err != nil {
			t.Fatalf("%s: %v", adv, err)
		}
		if !rep.Completed {
			t.Fatalf("%s: incomplete", adv)
		}
	}
}

func TestRunValidation(t *testing.T) {
	cases := []Config{
		{N: 1, K: 1},
		{N: 4, K: 0},
		{N: 4, K: 2, Algorithm: "nope"},
		{N: 4, K: 2, Adversary: "nope"},
		{N: 4, K: 2, Algorithm: AlgSingleSource, Adversary: AdvFreeEdge},
		{N: 4, K: 4, Sources: 4, Algorithm: AlgFlooding, Adversary: AdvRequestCutter},
		{N: 4, K: 2, Sources: 3}, // k < s
	}
	for i, c := range cases {
		if _, err := Run(c); err == nil {
			t.Fatalf("case %d (%+v): expected error", i, c)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := Run(Config{N: 8, K: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"completed"`, `"messages"`, `"tc"`, `"amortized_per_token"`, `"competitive_residual"`} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("JSON missing %s: %s", key, raw)
		}
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Metrics != rep.Metrics || back.Rounds != rep.Rounds {
		t.Fatal("round trip lost data")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{N: 10, K: 10, Sources: 2, Algorithm: AlgMultiSource, Adversary: AdvChurn, Seed: 9}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.Metrics != b.Metrics {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}
