package dynspread_test

// The flight recorder's admission ticket to the round hot path: with a
// recorder ATTACHED the steady-state rounds must still allocate exactly
// zero, and the per-round time at the documented operational stride must
// stay within 10% of a recorder-free run. Both reuse the differential
// machinery of alloc_gate_test.go — the recorder's constant-count
// bookkeeping (one ring at construction, a fixed snapshot copy per run)
// cancels between the r1 and r2 executions, so any per-round residue is a
// real per-sample allocation.

import (
	"testing"

	"dynspread"
	"dynspread/internal/sim"
)

// recorded returns cfg with a fresh recorder attached at the given stride.
// Capacity stays at the default ring size so the gate also covers the
// wraparound path (stride 1 over 200 rounds wraps a smaller ring; the
// default 1024 ring exercises the no-wrap path — both must be free).
func recorded(cfg dynspread.Config, stride int) dynspread.Config {
	cfg.Recorder = sim.NewRecorder(sim.RecorderConfig{Stride: stride})
	return cfg
}

var (
	gateUnicastCfg = dynspread.Config{
		N: 8, K: 512,
		Algorithm: dynspread.AlgTopkis,
		Adversary: dynspread.AdvStatic,
		Seed:      7,
	}
	gateBroadcastCfg = dynspread.Config{
		N: 8, K: 64, Sources: 8,
		Algorithm: dynspread.AlgFlooding,
		Adversary: dynspread.AdvStatic,
		Seed:      7,
	}
)

// TestAllocGateRecorderStride1: the worst case — a sample taken EVERY round
// — allocates nothing per steady-state round, in both engine modes.
func TestAllocGateRecorderStride1(t *testing.T) {
	gate(t, "unicast recorded stride 1", recorded(gateUnicastCfg, 1), 100, 200)
	gate(t, "broadcast recorded stride 1", recorded(gateBroadcastCfg, 1), 100, 200)
}

// TestAllocGateRecorderStride64: the documented operational stride. Most
// rounds only advance the recorder's counters; every 64th writes one ring
// slot in place.
func TestAllocGateRecorderStride64(t *testing.T) {
	gate(t, "unicast recorded stride 64", recorded(gateUnicastCfg, 64), 100, 200)
	gate(t, "broadcast recorded stride 64", recorded(gateBroadcastCfg, 64), 100, 200)
}

// recorderOverheadMaxRatio bounds the recorded/unrecorded steady-state
// per-round time ratio at the operational stride. Calibration (2026-08,
// PR 10, loaded shared VM): the measured ratio sits at 0.98–1.03 — the
// recorder's per-round work is a handful of counter additions against a
// K=2048 round — so 1.10 leaves noise headroom while still catching any
// accidental per-round sampling or snapshotting.
const recorderOverheadMaxRatio = 1.10

// TestRecorderOverheadGate: attaching a recorder at stride 64 may not slow
// the steady-state round by more than 10%. Both sides are measured with the
// same differential best-of-three nsPerRound, interleaved within each
// attempt so a load spike lands on both.
func TestRecorderOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	cfg := dynspread.Config{
		N: 64, K: 2048,
		Algorithm: dynspread.AlgTopkis,
		Adversary: dynspread.AdvStatic,
		Seed:      7,
	}
	bestRatio := 1e18
	for attempt := 0; attempt < 3; attempt++ {
		off := nsPerRound(t, cfg, 200, 400)
		on := nsPerRound(t, recorded(cfg, 64), 200, 400)
		if off <= 0 {
			continue // differential noise swallowed the baseline; retry
		}
		if ratio := on / off; ratio < bestRatio {
			bestRatio = ratio
		}
		if bestRatio <= recorderOverheadMaxRatio {
			t.Logf("recorder overhead ratio %.3f (bound %.2f)", bestRatio, recorderOverheadMaxRatio)
			return
		}
	}
	t.Fatalf("recorder at stride 64 costs %.3f× the unrecorded round, want <= %.2f",
		bestRatio, recorderOverheadMaxRatio)
}
