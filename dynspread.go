package dynspread

import (
	"fmt"
	"io"

	// Register the bundled adversaries; core (imported for ObliviousOpts)
	// registers the bundled algorithms the same way. The sweep layer pulls
	// in internal/scenario, which registers the bundled scenarios.
	_ "dynspread/internal/adversary"
	"dynspread/internal/core"
	"dynspread/internal/graph"
	"dynspread/internal/sim"
	"dynspread/internal/sweep"
	"dynspread/internal/trace"
	"dynspread/internal/wire"
)

// Metrics re-exports the engine's communication-cost measures (messages per
// Definition 1.1, TC(E) per Definition 1.3, token learnings, rounds).
type Metrics = sim.Metrics

// Algorithm selects one of the paper's token-forwarding algorithms. The
// value is a registry name: any algorithm registered through
// internal/registry (including ones added after this facade was written)
// can be selected by its name.
type Algorithm string

// Algorithms bundled with the simulator.
const (
	// AlgFlooding is the naive local-broadcast flooder (Section 1; the
	// O(n²)-amortized upper bound matching Theorem 2.3's lower bound).
	AlgFlooding Algorithm = "flooding"
	// AlgRandomBroadcast broadcasts a random held token each round.
	AlgRandomBroadcast Algorithm = "random-broadcast"
	// AlgSingleSource is Algorithm 1 (Single-Source-Unicast, Theorem 3.1).
	AlgSingleSource Algorithm = "single-source"
	// AlgMultiSource is Multi-Source-Unicast (Section 3.2.1, Theorem 3.5).
	AlgMultiSource Algorithm = "multi-source"
	// AlgOblivious is Algorithm 2 (Oblivious-Multi-Source-Unicast,
	// Theorem 3.8).
	AlgOblivious Algorithm = "oblivious"
	// AlgSpanningTree is the static-network baseline from the introduction.
	AlgSpanningTree Algorithm = "spanning-tree"
	// AlgTopkis is the second static baseline (Topkis [39]): every node
	// pushes an unsent token to every neighbor every round — O(n+k) rounds
	// but Θ(m(n+k)) messages.
	AlgTopkis Algorithm = "topkis"
)

// Adversary selects the dynamic-network adversary, again by registry name.
type Adversary string

// Scenario selects a registered workload by name: the scenario supplies the
// instance shape, the dynamics, and the token arrival schedule, so a Config
// with a Scenario needs nothing beyond a seed (and, optionally, an
// Algorithm overriding the scenario's default).
type Scenario string

// Scenarios bundled with the simulator (the former examples, plus streaming
// workloads); see internal/scenario for their definitions.
const (
	// ScenQuickstart is the README quickstart: one source, σ=3 churn.
	ScenQuickstart Scenario = "quickstart"
	// ScenSensornet is wireless n-gossip against the free-edge adversary.
	ScenSensornet Scenario = "sensornet"
	// ScenP2PChurn is n-gossip on a churning P2P overlay (k = s = n).
	ScenP2PChurn Scenario = "p2pchurn"
	// ScenMobileMesh is one source's tokens over a unit-disk mobility trace.
	ScenMobileMesh Scenario = "mobilemesh"
	// ScenStreaming is one source streaming k ≫ n tokens against the
	// strongly adaptive request cutter.
	ScenStreaming Scenario = "streaming"
	// ScenWalkCenters is n-gossip on oblivious near-regular dynamics.
	ScenWalkCenters Scenario = "walkcenters"
	// ScenTokenStream feeds 2 tokens/round into one source under churn
	// (a streaming arrival schedule).
	ScenTokenStream Scenario = "token-stream"
	// ScenBurstyGossip feeds Poisson-like arrivals into 4 sources over
	// edge-Markovian fading links.
	ScenBurstyGossip Scenario = "bursty-gossip"
)

// GraphTrace is a recorded per-round edge-event stream: the dynamics of one
// execution, serialized as JSONL (see internal/trace). Record one with
// RunRecorded, persist it with its Write method, load it with ReadTrace,
// and replay it through Config.Replay for bit-exact reproduction.
type GraphTrace = trace.GraphTrace

// ReadTrace parses a JSONL graph trace (as written by GraphTrace.Write).
func ReadTrace(r io.Reader) (*GraphTrace, error) { return trace.ReadGraphTrace(r) }

// Adversaries bundled with the simulator.
const (
	// AdvStatic serves a fixed random connected graph.
	AdvStatic Adversary = "static"
	// AdvChurn is σ-edge-stable random churn (σ = Config.Sigma, default 3).
	AdvChurn Adversary = "churn"
	// AdvRewire draws a fresh random connected graph every round.
	AdvRewire Adversary = "rewire"
	// AdvMarkovian is the edge-Markovian evolving graph.
	AdvMarkovian Adversary = "markovian"
	// AdvRegular serves fresh random near-regular graphs (the oblivious
	// substrate of Algorithm 2 and Lemma 3.7).
	AdvRegular Adversary = "regular"
	// AdvRotatingStar rotates a star center — the classic hard dynamic
	// instance where Θ(n) edges change per rotation.
	AdvRotatingStar Adversary = "rotating-star"
	// AdvMobility is a wireless mobility model: unit-disk graphs of nodes
	// drifting through an arena (the paper's ad-hoc motivation).
	AdvMobility Adversary = "mobility"
	// AdvRequestCutter is the strongly adaptive unicast adversary that cuts
	// request-carrying edges (stresses Theorems 3.1/3.5).
	AdvRequestCutter Adversary = "request-cutter"
	// AdvFreeEdge is the Section 2 strongly adaptive local-broadcast
	// lower-bound adversary (broadcast algorithms only).
	AdvFreeEdge Adversary = "free-edge"
)

// Config describes one simulation.
type Config struct {
	// Scenario, when non-empty, selects a registered workload supplying the
	// instance shape, dynamics, and arrival schedule. N/K/Sources must stay
	// zero; Algorithm and Adversary, when set, override the scenario's
	// defaults.
	Scenario Scenario
	// N is the number of nodes (>= 2) and K the number of tokens (>= 1).
	N, K int
	// Sources is the number of source nodes s: 1 = single source, N with
	// K = N is n-gossip; tokens are distributed round-robin over sources
	// 0..s-1. Defaults to 1.
	Sources int
	// Algorithm and Adversary select the protocol and the dynamic topology.
	Algorithm Algorithm
	Adversary Adversary
	// Replay, when non-nil, replays a recorded graph trace as the dynamics
	// instead of a live adversary (it takes precedence over Adversary).
	Replay *GraphTrace
	// Seed derives every random choice. Runs are reproducible given equal
	// configs.
	Seed int64
	// MaxRounds caps the execution (0 = a generous default well above the
	// paper's O(nk) bounds).
	MaxRounds int
	// Sigma is the edge-stability parameter for AdvChurn (default 3, the
	// assumption of Theorems 3.4/3.6).
	Sigma int
	// Oblivious tunes Algorithm 2 (zero value = paper parameters).
	Oblivious core.ObliviousOpts
	// Workspace, if non-nil, supplies reusable engine buffers for
	// allocation-free repeated runs. Not safe for concurrent use; see
	// sim.Workspace.
	Workspace *sim.Workspace
	// Recorder, if non-nil, attaches a flight recorder sampling per-round
	// dynamics into its preallocated ring (see sim.NewRecorder); the run's
	// snapshot lands on Report.Flight. Like Workspace it is reusable across
	// sequential runs (each run resets it) but not concurrency-safe.
	Recorder *sim.Recorder
}

// Report is the outcome of one simulation.
type Report struct {
	// Completed is true iff every node received every token.
	Completed bool `json:"completed"`
	// Rounds is the number of rounds executed.
	Rounds int `json:"rounds"`
	// Metrics holds the communication-cost measures.
	Metrics Metrics `json:"metrics"`
	// Amortized is Metrics.Messages / K, the paper's amortized message
	// complexity per token.
	Amortized float64 `json:"amortized_per_token"`
	// CompetitiveResidual is Messages − 1·TC(E), the 1-adversary-competitive
	// residual of Definition 1.3.
	CompetitiveResidual float64 `json:"competitive_residual"`
	// AdversaryName identifies the concrete adversary used.
	AdversaryName string `json:"adversary"`
	// Flight is the flight recorder's snapshot of the run's per-round
	// dynamics; nil unless Config.Recorder was set.
	Flight *sim.RecorderSnapshot `json:"flight,omitempty"`
}

// Run executes one simulation described by cfg. Scenarios, algorithms, and
// adversaries are resolved by name through their registries (via the sweep
// layer's single trial runner), so components registered by other packages
// work here too.
func Run(cfg Config) (*Report, error) {
	r, err := run(cfg, nil)
	if err != nil {
		return nil, err
	}
	return report(r), nil
}

// RunFull executes one simulation and returns the service-schema result:
// the RESOLVED trial (scenario names expanded into their concrete shape,
// algorithm, dynamics, and arrival schedule) paired with the engine
// metrics — the same JSON object the spreadd service returns per trial and
// spreadsim -json prints.
func RunFull(cfg Config) (*TrialResult, error) {
	r, err := run(cfg, nil)
	if err != nil {
		return nil, err
	}
	tr := wire.ResultFromSweep(r)
	return &tr, nil
}

// RunRecorded executes one simulation and additionally records its dynamics
// as a replayable GraphTrace: running the same Config with Replay set to the
// returned trace (live adversary replaced by the recording) reproduces the
// execution — including its Metrics — exactly.
func RunRecorded(cfg Config) (*Report, *GraphTrace, error) {
	r, tr, err := runRecorded(cfg)
	if err != nil {
		return nil, nil, err
	}
	return report(r), tr, nil
}

// RunFullRecorded is RunRecorded with the service-schema result of RunFull.
func RunFullRecorded(cfg Config) (*TrialResult, *GraphTrace, error) {
	r, gt, err := runRecorded(cfg)
	if err != nil {
		return nil, nil, err
	}
	res := wire.ResultFromSweep(r)
	return &res, gt, nil
}

func runRecorded(cfg Config) (sweep.Result, *GraphTrace, error) {
	var b *trace.Builder
	r, err := run(cfg, func(_ int, g *graph.Graph) {
		if b == nil {
			b = trace.NewBuilder(g.N())
		}
		b.Observe(g)
	})
	if err != nil {
		return r, nil, err
	}
	if b == nil { // degenerate zero-round completion
		return r, &GraphTrace{N: r.Trial.N}, nil
	}
	return r, b.Trace(), nil
}

func run(cfg Config, onGraph func(r int, g *graph.Graph)) (sweep.Result, error) {
	if cfg.Scenario == "" {
		if cfg.N < 2 {
			return sweep.Result{}, fmt.Errorf("dynspread: need N >= 2, got %d", cfg.N)
		}
		if cfg.K < 1 {
			return sweep.Result{}, fmt.Errorf("dynspread: need K >= 1, got %d", cfg.K)
		}
	}
	algName := string(cfg.Algorithm)
	advName := string(cfg.Adversary)
	if cfg.Scenario == "" {
		// Scenario runs leave blanks for the scenario's own defaults;
		// direct runs keep the facade's classic defaults.
		if algName == "" {
			algName = string(AlgSingleSource)
		}
		// A replay ignores the adversary entirely; leaving the name blank
		// keeps resolved trials honest about which dynamics actually ran.
		if advName == "" && cfg.Replay == nil {
			advName = string(AdvStatic)
		}
	}
	var opts any = cfg.Oblivious
	if cfg.Scenario != "" && cfg.Oblivious == (core.ObliviousOpts{}) {
		// Let the scenario's algorithm options apply unless the caller set
		// explicit ones.
		opts = nil
	}
	r, err := sweep.RunTrialRecorded(sweep.Trial{
		Scenario: string(cfg.Scenario),
		N:        cfg.N, K: cfg.K, Sources: cfg.Sources,
		Algorithm: algName,
		Adversary: advName,
		Replay:    cfg.Replay,
		Seed:      cfg.Seed,
		MaxRounds: cfg.MaxRounds,
		Sigma:     cfg.Sigma,
		Options:   opts,
		OnGraph:   onGraph,
	}, cfg.Workspace, cfg.Recorder)
	if err != nil {
		return r, fmt.Errorf("dynspread: %w", err)
	}
	return r, nil
}

func report(r sweep.Result) *Report {
	res := r.Res
	return &Report{
		Completed:           res.Completed,
		Rounds:              res.Rounds,
		Metrics:             res.Metrics,
		Amortized:           res.Metrics.AmortizedPerToken(r.Trial.K),
		CompetitiveResidual: res.Metrics.Competitive(1),
		AdversaryName:       r.AdversaryName,
		Flight:              r.Rounds,
	}
}
