package dynspread_test

// Distributed merge-equivalence suite: a grid sharded across two in-process
// spreadd workers must merge back bit-identical to the single-node sweep —
// per trial and in aggregate — on the same 112 golden rows that pin the
// engine itself (golden_test.go). Combined with the golden suite this
// chains the guarantee end to end: seed engine ≡ unified engine ≡ service
// schema ≡ distributed execution.

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"dynspread"
	"dynspread/internal/cluster"
	"dynspread/internal/service"
	"dynspread/internal/sweep"
	"dynspread/internal/wire"
)

// goldenSpecs converts the golden rows into wire specs (completed-only in
// -short mode, mirroring the golden suite's skip).
func goldenSpecs(t *testing.T) []dynspread.TrialSpec {
	t.Helper()
	specs := make([]dynspread.TrialSpec, 0, len(goldenRows))
	for _, row := range goldenRows {
		if testing.Short() && !row.completed {
			continue
		}
		specs = append(specs, dynspread.TrialSpec{
			N: goldenN, K: goldenK, Sources: row.sources,
			Algorithm: row.alg,
			Adversary: row.adv,
			Seed:      row.seed,
			MaxRounds: goldenMaxRounds,
		})
	}
	return specs
}

func newGoldenWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := service.New(service.Config{JobWorkers: 2})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Shutdown(context.Background())
	})
	return hs
}

// TestDistributedGoldenMergeEquivalence is the acceptance gate of the
// cluster tier: RunDistributed over ≥2 workers reproduces the local
// execution of all golden rows bit for bit, and the sweep-shaped aggregates
// of the merged results equal the single-node sweep layer's aggregates
// exactly (no float drift through the JSON wire or the merge).
func TestDistributedGoldenMergeEquivalence(t *testing.T) {
	specs := goldenSpecs(t)
	w1, w2 := newGoldenWorker(t), newGoldenWorker(t)

	dist, err := dynspread.RunDistributed(context.Background(), dynspread.RunRequest{Trials: specs},
		dynspread.DistributedConfig{Workers: []string{w1.URL, w2.URL}, ShardSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	local, err := dynspread.RunSpecs(context.Background(), specs, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != len(specs) || len(local) != len(specs) {
		t.Fatalf("result counts: dist %d local %d want %d", len(dist), len(local), len(specs))
	}
	for i := range specs {
		if !reflect.DeepEqual(dist[i], local[i]) {
			t.Fatalf("golden row %d diverged across the cluster:\n dist  %+v\n local %+v", i, dist[i], local[i])
		}
	}

	// The golden rows themselves still hold over the distributed path.
	rowAt := 0
	for _, row := range goldenRows {
		if testing.Short() && !row.completed {
			continue
		}
		r := dist[rowAt]
		rowAt++
		m := r.Metrics
		got := goldenRow{row.alg, row.adv, row.sources, row.seed,
			r.Completed, r.Rounds, m.Messages, m.Broadcasts, m.Learnings, m.TC, m.Removals}
		if got != row {
			t.Errorf("distributed run diverged from the golden table:\n got  %+v\n want %+v", got, row)
		}
	}

	// Aggregate merge-equivalence against the sweep layer (sweep.Run is
	// what RunGrid executes; the golden rows are not grid-expressible, so
	// the trial-list entry point is the apples-to-apples comparison).
	trials := make([]sweep.Trial, len(specs))
	for i, s := range specs {
		trials[i] = sweep.Trial{
			N: s.N, K: s.K, Sources: s.Sources,
			Algorithm: s.Algorithm, Adversary: s.Adversary,
			Seed: s.Seed, MaxRounds: s.MaxRounds,
		}
	}
	sweepResults, err := sweep.Run(context.Background(), trials, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	type pair struct {
		dist  func(wire.TrialResult) float64
		local func(sweep.Result) float64
	}
	for name, p := range map[string]pair{
		"messages":  {cluster.Messages, sweep.Messages},
		"rounds":    {cluster.Rounds, sweep.Rounds},
		"tc":        {cluster.TC, sweep.TC},
		"amortized": {cluster.AmortizedPerToken, sweep.AmortizedPerToken},
	} {
		got, want := cluster.Aggregate(dist, p.dist), sweep.Aggregate(sweepResults, p.local)
		if got != want {
			t.Errorf("%s aggregates diverged:\n dist  %+v\n sweep %+v", name, got, want)
		}
	}
}

// TestRunDistributedStoreWarmRun: a second RunDistributed against the same
// store directory answers entirely from disk — the workers see zero new
// requests — and returns identical results.
func TestRunDistributedStoreWarmRun(t *testing.T) {
	w := newGoldenWorker(t)
	dir := t.TempDir()
	req := dynspread.RunRequest{Grid: &dynspread.GridSpec{
		Ns: []int{12}, Ks: []int{8},
		Algorithms:  []string{"single-source"},
		Adversaries: []string{"static", "churn"},
		Seeds:       []int64{1, 2, 3},
	}}
	cfg := dynspread.DistributedConfig{Workers: []string{w.URL}, StoreDir: dir}

	first, err := dynspread.RunDistributed(context.Background(), req, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the only worker: a warm store must not need it at all.
	w.Close()
	second, err := dynspread.RunDistributed(context.Background(), req, cfg)
	if err != nil {
		t.Fatalf("warm run touched the dead worker: %v", err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("warm run results diverged")
	}
}
